//! The (possibly unreliable) control plane between Node Managers and the
//! Monitor.
//!
//! The paper's platform is a distributed control loop: per-node Node
//! Managers stream `docker stats` to a central Monitor, which actuates
//! `docker update`/spawn/remove back over the network. Real deployments
//! lose, delay, and duplicate those messages, and actuations fail. This
//! module models that unreliability — **deterministically**: every
//! perturbation is drawn from one seeded [`SimRng`] stream in the serial
//! Monitor phase, so a degraded run is byte-identical at any tick-engine
//! parallelism, exactly like `FaultInjector`.
//!
//! Three mechanisms flow through the [`ControlPlane`]:
//!
//! * **Reports** ([`ControlPlane::transmit`]): each Node Manager's usage
//!   samples can be lost (never arrive), delayed (arrive N Monitor
//!   periods late, carrying their *measurement* timestamp so the Monitor
//!   sees stale data, not time-shifted data), or duplicated (idempotent
//!   re-delivery). The per-container sample store keeps the freshest
//!   measurement and its age in periods.
//! * **Actuations** ([`ControlPlane::submit`] / [`ControlPlane::due_retries`]):
//!   a scaling action can fail to apply. Failures retry with capped
//!   exponential backoff under a monotonic **idempotency key**; a
//!   lost-ack failure (the action executed but its acknowledgement was
//!   dropped) is deduplicated at retry time so a spawn can never
//!   double-place a replica.
//! * **Freshness accounting** ([`ControlPlane::node_age`]): the Monitor
//!   uses per-node report ages to compute its safe-mode quorum and the
//!   per-service staleness budget.

use std::collections::BTreeMap;

use hyscale_cluster::{ContainerId, ContainerUsage, Cores, Mbps, MemMb, NodeId, ServiceId};
use hyscale_sim::{SimDuration, SimRng, SimTime, SnapReader, SnapWriter, SnapshotError};
use hyscale_trace::{ActuationTag, EventKind, LinkTag, TraceSink};

use crate::actions::ScalingAction;
use crate::balancer::BreakerConfig;

/// Sample age reported for containers the Monitor has never heard about.
pub const NEVER_REPORTED: u32 = u32::MAX;

/// Tunables for the control-plane degradation model and the resilience
/// machinery that survives it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlPlaneConfig {
    /// Master switch. When `false` the Monitor bypasses the control
    /// plane entirely and behaves exactly as before this layer existed.
    pub enabled: bool,
    /// Probability a Node Manager report is lost in transit.
    pub loss_prob: f64,
    /// Probability a (non-lost) report is delayed.
    pub delay_prob: f64,
    /// Delayed reports arrive uniformly 1..=this many Monitor periods
    /// late, still carrying their measurement timestamp.
    pub max_delay_periods: u32,
    /// Probability a delivered report is delivered a second time
    /// (idempotently re-applied; counted and traced).
    pub duplicate_prob: f64,
    /// Probability a scaling action's delivery fails.
    pub actuation_failure_prob: f64,
    /// Among actuation failures, the fraction that are *lost acks*: the
    /// action executed but the Monitor never heard back, so its retry
    /// must be deduplicated by idempotency key.
    pub lost_ack_frac: f64,
    /// Retry attempts per failed actuation before abandoning it.
    pub max_actuation_retries: u32,
    /// First retry delay after a failed actuation.
    pub retry_base_secs: f64,
    /// Retry delay ceiling (doubles per consecutive failure).
    pub retry_max_secs: f64,
    /// A service's data is *stale* when its oldest replica sample is
    /// older than this many Monitor periods; capacity-reducing decisions
    /// for stale services are vetoed.
    pub staleness_budget_ticks: u32,
    /// Safe-mode quorum: when fewer than `ceil(fraction × polled nodes)`
    /// nodes have fresh reports, all scaling freezes (recovery keeps
    /// running). `0.0` disables safe mode.
    pub quorum_fraction: f64,
    /// Per-replica circuit-breaker tunables for the load balancer.
    pub breaker: BreakerConfig,
}

impl Default for ControlPlaneConfig {
    fn default() -> Self {
        ControlPlaneConfig::perfect()
    }
}

impl ControlPlaneConfig {
    /// A disabled control plane: the legacy perfectly-reliable loop.
    pub fn perfect() -> Self {
        ControlPlaneConfig {
            enabled: false,
            loss_prob: 0.0,
            delay_prob: 0.0,
            max_delay_periods: 1,
            duplicate_prob: 0.0,
            actuation_failure_prob: 0.0,
            lost_ack_frac: 0.5,
            max_actuation_retries: 3,
            retry_base_secs: 5.0,
            retry_max_secs: 40.0,
            staleness_budget_ticks: 1,
            quorum_fraction: 0.5,
            breaker: BreakerConfig::default(),
        }
    }

    /// The paper-style degraded preset: 5% loss, 10% delay up to 2
    /// periods, 2% duplication, 5% actuation failure.
    pub fn degraded() -> Self {
        ControlPlaneConfig {
            enabled: true,
            loss_prob: 0.05,
            delay_prob: 0.10,
            max_delay_periods: 2,
            duplicate_prob: 0.02,
            actuation_failure_prob: 0.05,
            ..ControlPlaneConfig::perfect()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason if a probability leaves `[0, 1]`,
    /// the retry backoff range is not finite-positive or inverted, or
    /// `max_delay_periods` is zero while delays are possible.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("loss_prob", self.loss_prob),
            ("delay_prob", self.delay_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("actuation_failure_prob", self.actuation_failure_prob),
            ("lost_ack_frac", self.lost_ack_frac),
            ("quorum_fraction", self.quorum_fraction),
        ] {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        if self.delay_prob > 0.0 && self.max_delay_periods == 0 {
            return Err("max_delay_periods must be >= 1 when delay_prob > 0".into());
        }
        if !(self.retry_base_secs.is_finite() && self.retry_base_secs > 0.0) {
            return Err(format!(
                "retry_base_secs must be positive, got {}",
                self.retry_base_secs
            ));
        }
        if !(self.retry_max_secs.is_finite() && self.retry_max_secs >= self.retry_base_secs) {
            return Err(format!(
                "retry_max_secs must be >= retry_base_secs, got {}",
                self.retry_max_secs
            ));
        }
        self.breaker
            .validate()
            .map_err(|e| format!("breaker: {e}"))?;
        Ok(())
    }
}

/// Control-plane health counters, reported in `RunReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlPlaneStats {
    /// Node Manager reports dropped in transit.
    pub reports_lost: u64,
    /// Reports that arrived at least one period late.
    pub reports_late: u64,
    /// Reports delivered more than once (idempotently re-applied).
    pub reports_duplicated: u64,
    /// Scaling-action delivery failures (including retry failures).
    pub actuation_failures: u64,
    /// Retry attempts made for failed actuations.
    pub actuation_retries: u64,
    /// Retries suppressed because the idempotency key showed the action
    /// already executed (lost ack).
    pub actuations_deduped: u64,
    /// Actions dropped after exhausting their retry budget.
    pub actuations_abandoned: u64,
    /// Balancer circuit-breaker open transitions.
    pub breaker_opens: u64,
    /// Monitor periods spent in cluster-wide safe mode.
    pub safe_mode_periods: u64,
    /// Capacity-reducing decisions vetoed on stale data.
    pub stale_vetoes: u64,
}

impl std::ops::AddAssign for ControlPlaneStats {
    fn add_assign(&mut self, rhs: Self) {
        self.reports_lost += rhs.reports_lost;
        self.reports_late += rhs.reports_late;
        self.reports_duplicated += rhs.reports_duplicated;
        self.actuation_failures += rhs.actuation_failures;
        self.actuation_retries += rhs.actuation_retries;
        self.actuations_deduped += rhs.actuations_deduped;
        self.actuations_abandoned += rhs.actuations_abandoned;
        self.breaker_opens += rhs.breaker_opens;
        self.safe_mode_periods += rhs.safe_mode_periods;
        self.stale_vetoes += rhs.stale_vetoes;
    }
}

/// What happened to a submitted scaling action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActuationOutcome {
    /// Delivered and acknowledged: apply it now, nothing pending.
    Executed,
    /// Executed on the data plane but the ack was lost: apply it now,
    /// and a retry is pending that the idempotency key will suppress.
    ExecutedAckLost,
    /// Delivery failed outright: do not apply; a retry is pending.
    Dropped,
}

impl ActuationOutcome {
    /// Whether the data plane actually ran the action.
    pub fn executed(self) -> bool {
        !matches!(self, ActuationOutcome::Dropped)
    }
}

/// A report in flight, queued for late delivery.
#[derive(Debug, Clone)]
struct DelayedReport {
    deliver_period: u64,
    node: NodeId,
    measured_period: u64,
    samples: Vec<ContainerUsage>,
}

/// A failed actuation awaiting its retry window.
#[derive(Debug, Clone, Copy)]
struct PendingActuation {
    key: u64,
    action: ScalingAction,
    /// Attempts made so far (1 = the original submission).
    attempts: u32,
    next_attempt: SimTime,
    /// Delay to impose after the *next* failure.
    backoff_secs: f64,
    /// The data plane already ran this action (its ack was lost); any
    /// due retry is deduplicated instead of re-executed.
    executed: bool,
}

/// The seeded, stateful control-plane model. Owned by the Monitor; all
/// RNG draws happen in the serial Monitor phase in a fixed order
/// (sorted node ids for reports, idempotency-key order for retries).
#[derive(Debug, Clone)]
pub struct ControlPlane {
    config: ControlPlaneConfig,
    rng: SimRng,
    /// Monitor periods elapsed (advanced by [`ControlPlane::begin_period`]).
    period: u64,
    /// Freshest delivered measurement per node, as the period it was
    /// measured in.
    node_delivered: BTreeMap<NodeId, u64>,
    /// Freshest delivered sample per container and the period it was
    /// measured in.
    samples: BTreeMap<ContainerId, (ContainerUsage, u64)>,
    /// Reports in flight, drained by [`ControlPlane::begin_period`].
    delayed: Vec<DelayedReport>,
    /// Failed actuations, kept sorted by idempotency key (monotonic, so
    /// insertion order *is* key order).
    pending: Vec<PendingActuation>,
    next_key: u64,
    /// Health counters (safe-mode and veto tallies are incremented by
    /// the Monitor, which owns those policies).
    pub stats: ControlPlaneStats,
}

impl ControlPlane {
    /// Creates a control plane with its own seeded RNG stream.
    pub fn new(config: ControlPlaneConfig, rng: SimRng) -> Self {
        ControlPlane {
            config,
            rng,
            period: 0,
            node_delivered: BTreeMap::new(),
            samples: BTreeMap::new(),
            delayed: Vec::new(),
            pending: Vec::new(),
            next_key: 0,
            stats: ControlPlaneStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ControlPlaneConfig {
        &self.config
    }

    /// Test hook: mutates the configuration mid-run (e.g. to heal the
    /// data plane and watch a pending retry land).
    #[cfg(test)]
    pub(crate) fn config_mut(&mut self) -> &mut ControlPlaneConfig {
        &mut self.config
    }

    /// Monitor periods elapsed so far.
    pub fn current_period(&self) -> u64 {
        self.period
    }

    /// Starts a new Monitor period: advances the period counter and
    /// delivers every delayed report that is now due, tracing each late
    /// arrival. Call once at the top of each Monitor period, before
    /// [`ControlPlane::transmit`].
    pub fn begin_period(&mut self, now: SimTime, trace: &mut TraceSink) {
        self.period += 1;
        let period = self.period;
        let due: Vec<DelayedReport> = {
            let mut due = Vec::new();
            self.delayed.retain_mut(|r| {
                if r.deliver_period <= period {
                    due.push(DelayedReport {
                        deliver_period: r.deliver_period,
                        node: r.node,
                        measured_period: r.measured_period,
                        samples: std::mem::take(&mut r.samples),
                    });
                    false
                } else {
                    true
                }
            });
            due
        };
        for report in due {
            let delay = (period - report.measured_period) as u32;
            self.stats.reports_late += 1;
            trace.emit(
                now,
                EventKind::ReportLink {
                    link: LinkTag::Late,
                    node: report.node.index(),
                    delay_periods: delay,
                },
            );
            self.deliver(report.node, report.measured_period, &report.samples);
        }
    }

    /// Sends one Node Manager's usage samples through the degraded link.
    /// Draws loss, delay, and duplication from the seeded stream; calls
    /// must happen in a deterministic node order.
    pub fn transmit(
        &mut self,
        node: NodeId,
        samples: Vec<ContainerUsage>,
        now: SimTime,
        trace: &mut TraceSink,
    ) {
        if self.rng.chance(self.config.loss_prob) {
            self.stats.reports_lost += 1;
            trace.emit(
                now,
                EventKind::ReportLink {
                    link: LinkTag::Lost,
                    node: node.index(),
                    delay_periods: 0,
                },
            );
            return;
        }
        if self.rng.chance(self.config.delay_prob) {
            let delay =
                self.rng
                    .uniform_usize(self.config.max_delay_periods as usize) as u64
                    + 1;
            self.delayed.push(DelayedReport {
                deliver_period: self.period + delay,
                node,
                measured_period: self.period,
                samples,
            });
            return;
        }
        self.deliver(node, self.period, &samples);
        if self.rng.chance(self.config.duplicate_prob) {
            // Idempotent re-delivery: the sample store keeps the
            // freshest measurement, so applying the same report twice
            // changes nothing — which is exactly the property we count.
            self.stats.reports_duplicated += 1;
            trace.emit(
                now,
                EventKind::ReportLink {
                    link: LinkTag::Duplicate,
                    node: node.index(),
                    delay_periods: 0,
                },
            );
            self.deliver(node, self.period, &samples);
        }
    }

    /// Installs delivered samples, keeping the freshest measurement per
    /// container (a late report never overwrites newer data).
    fn deliver(&mut self, node: NodeId, measured_period: u64, samples: &[ContainerUsage]) {
        let newest = self
            .node_delivered
            .get(&node)
            .is_none_or(|&prev| measured_period >= prev);
        if newest {
            self.node_delivered.insert(node, measured_period);
        }
        for sample in samples {
            match self.samples.get(&sample.container) {
                Some(&(_, prev)) if prev > measured_period => {}
                _ => {
                    self.samples
                        .insert(sample.container, (*sample, measured_period));
                }
            }
        }
    }

    /// The freshest delivered sample for a container and its age in
    /// Monitor periods ([`NEVER_REPORTED`] if nothing ever arrived).
    pub fn sample(&self, container: ContainerId) -> Option<(&ContainerUsage, u32)> {
        self.samples.get(&container).map(|(usage, measured)| {
            let age = (self.period - measured).min(u64::from(u32::MAX)) as u32;
            (usage, age)
        })
    }

    /// Age of a node's freshest delivered report, in Monitor periods
    /// ([`NEVER_REPORTED`] if nothing ever arrived).
    pub fn node_age(&self, node: NodeId) -> u32 {
        self.node_delivered
            .get(&node)
            .map(|&measured| (self.period - measured).min(u64::from(u32::MAX)) as u32)
            .unwrap_or(NEVER_REPORTED)
    }

    /// Drops samples for containers that no longer exist in the cluster
    /// (`live` must be sorted).
    pub fn prune_missing(&mut self, live: &[ContainerId]) {
        self.samples.retain(|id, _| live.binary_search(id).is_ok());
    }

    /// Submits a scaling action to the data plane, drawing its fate from
    /// the seeded stream. On failure a retry is scheduled under a fresh
    /// idempotency key; a lost-ack failure still executes (the caller
    /// must apply the action) and the key suppresses its retry.
    pub fn submit(
        &mut self,
        action: ScalingAction,
        now: SimTime,
        trace: &mut TraceSink,
    ) -> ActuationOutcome {
        let key = self.next_key;
        self.next_key += 1;
        if !self.rng.chance(self.config.actuation_failure_prob) {
            return ActuationOutcome::Executed;
        }
        self.stats.actuation_failures += 1;
        let executed = self.rng.chance(self.config.lost_ack_frac);
        let next_attempt = now + SimDuration::from_secs(self.config.retry_base_secs);
        trace.emit(
            now,
            EventKind::Actuation {
                outcome: ActuationTag::Failed,
                key,
                attempt: 1,
                retry_at_us: next_attempt.as_micros(),
            },
        );
        self.pending.push(PendingActuation {
            key,
            action,
            attempts: 1,
            next_attempt,
            backoff_secs: (self.config.retry_base_secs * 2.0).min(self.config.retry_max_secs),
            executed,
        });
        if executed {
            ActuationOutcome::ExecutedAckLost
        } else {
            ActuationOutcome::Dropped
        }
    }

    /// Processes every pending retry whose window has arrived, in
    /// idempotency-key order, and returns the actions the caller must
    /// now apply (deduplicated lost-ack entries return nothing).
    pub fn due_retries(&mut self, now: SimTime, trace: &mut TraceSink) -> Vec<ScalingAction> {
        let mut execute = Vec::new();
        let mut keep = Vec::with_capacity(self.pending.len());
        // Monotonic keys + push order means `pending` is already sorted
        // by key; draining front-to-back keeps RNG draws deterministic.
        for mut entry in self.pending.drain(..) {
            if now < entry.next_attempt {
                keep.push(entry);
                continue;
            }
            if entry.executed {
                self.stats.actuations_deduped += 1;
                trace.emit(
                    now,
                    EventKind::Actuation {
                        outcome: ActuationTag::Deduped,
                        key: entry.key,
                        attempt: entry.attempts + 1,
                        retry_at_us: 0,
                    },
                );
                continue;
            }
            self.stats.actuation_retries += 1;
            entry.attempts += 1;
            if !self.rng.chance(self.config.actuation_failure_prob) {
                trace.emit(
                    now,
                    EventKind::Actuation {
                        outcome: ActuationTag::Retried,
                        key: entry.key,
                        attempt: entry.attempts,
                        retry_at_us: 0,
                    },
                );
                execute.push(entry.action);
                continue;
            }
            self.stats.actuation_failures += 1;
            if entry.attempts > self.config.max_actuation_retries {
                self.stats.actuations_abandoned += 1;
                trace.emit(
                    now,
                    EventKind::Actuation {
                        outcome: ActuationTag::Abandoned,
                        key: entry.key,
                        attempt: entry.attempts,
                        retry_at_us: 0,
                    },
                );
                continue;
            }
            if self.rng.chance(self.config.lost_ack_frac) {
                // The retry itself executed but its ack was lost: apply
                // now, keep the entry so further retries deduplicate.
                entry.executed = true;
                execute.push(entry.action);
            }
            entry.next_attempt = now + SimDuration::from_secs(entry.backoff_secs);
            trace.emit(
                now,
                EventKind::Actuation {
                    outcome: ActuationTag::Failed,
                    key: entry.key,
                    attempt: entry.attempts,
                    retry_at_us: entry.next_attempt.as_micros(),
                },
            );
            entry.backoff_secs = (entry.backoff_secs * 2.0).min(self.config.retry_max_secs);
            keep.push(entry);
        }
        self.pending = keep;
        execute
    }

    /// Pending (not yet abandoned) actuation retries.
    pub fn pending_retries(&self) -> usize {
        self.pending.len()
    }

    /// Serializes the full mutable control-plane state (snapshot
    /// support). The configuration is *not* written — it is rebuilt from
    /// scenario config on restore.
    pub fn snapshot_write(&self, w: &mut SnapWriter) {
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.put_u64(self.period);
        w.put_usize(self.node_delivered.len());
        for (&node, &measured) in &self.node_delivered {
            w.put_u32(node.index());
            w.put_u64(measured);
        }
        w.put_usize(self.samples.len());
        for (&container, &(ref usage, measured)) in &self.samples {
            w.put_u32(container.index());
            write_usage(w, usage);
            w.put_u64(measured);
        }
        w.put_usize(self.delayed.len());
        for report in &self.delayed {
            w.put_u64(report.deliver_period);
            w.put_u32(report.node.index());
            w.put_u64(report.measured_period);
            w.put_usize(report.samples.len());
            for usage in &report.samples {
                write_usage(w, usage);
            }
        }
        w.put_usize(self.pending.len());
        for p in &self.pending {
            w.put_u64(p.key);
            write_action(w, &p.action);
            w.put_u32(p.attempts);
            w.put_u64(p.next_attempt.as_micros());
            w.put_f64(p.backoff_secs);
            w.put_bool(p.executed);
        }
        w.put_u64(self.next_key);
        let s = &self.stats;
        for v in [
            s.reports_lost,
            s.reports_late,
            s.reports_duplicated,
            s.actuation_failures,
            s.actuation_retries,
            s.actuations_deduped,
            s.actuations_abandoned,
            s.breaker_opens,
            s.safe_mode_periods,
            s.stale_vetoes,
        ] {
            w.put_u64(v);
        }
    }

    /// Overlays state captured by [`ControlPlane::snapshot_write`] onto
    /// this (freshly constructed) control plane.
    pub fn snapshot_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.get_u64()?;
        }
        self.rng = SimRng::from_state(state);
        self.period = r.get_u64()?;
        self.node_delivered.clear();
        for _ in 0..r.get_usize()? {
            let node = NodeId::new(r.get_u32()?);
            let measured = r.get_u64()?;
            self.node_delivered.insert(node, measured);
        }
        self.samples.clear();
        for _ in 0..r.get_usize()? {
            let container = ContainerId::new(r.get_u32()?);
            let usage = read_usage(r)?;
            let measured = r.get_u64()?;
            self.samples.insert(container, (usage, measured));
        }
        self.delayed.clear();
        for _ in 0..r.get_usize()? {
            let deliver_period = r.get_u64()?;
            let node = NodeId::new(r.get_u32()?);
            let measured_period = r.get_u64()?;
            let n = r.get_usize()?;
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                samples.push(read_usage(r)?);
            }
            self.delayed.push(DelayedReport {
                deliver_period,
                node,
                measured_period,
                samples,
            });
        }
        self.pending.clear();
        for _ in 0..r.get_usize()? {
            let key = r.get_u64()?;
            let action = read_action(r)?;
            let attempts = r.get_u32()?;
            let next_attempt = SimTime::from_micros(r.get_u64()?);
            let backoff_secs = r.get_f64()?;
            let executed = r.get_bool()?;
            self.pending.push(PendingActuation {
                key,
                action,
                attempts,
                next_attempt,
                backoff_secs,
                executed,
            });
        }
        self.next_key = r.get_u64()?;
        self.stats = ControlPlaneStats {
            reports_lost: r.get_u64()?,
            reports_late: r.get_u64()?,
            reports_duplicated: r.get_u64()?,
            actuation_failures: r.get_u64()?,
            actuation_retries: r.get_u64()?,
            actuations_deduped: r.get_u64()?,
            actuations_abandoned: r.get_u64()?,
            breaker_opens: r.get_u64()?,
            safe_mode_periods: r.get_u64()?,
            stale_vetoes: r.get_u64()?,
        };
        Ok(())
    }
}

/// Serializes one usage sample (snapshot support).
fn write_usage(w: &mut SnapWriter, u: &ContainerUsage) {
    w.put_u32(u.container.index());
    w.put_f64(u.cpu_used.get());
    w.put_f64(u.mem_used.get());
    w.put_f64(u.net_used.get());
    w.put_f64(u.disk_used.get());
    w.put_usize(u.in_flight);
    w.put_bool(u.swapping);
}

/// Reads a usage sample written by [`write_usage`].
fn read_usage(r: &mut SnapReader<'_>) -> Result<ContainerUsage, SnapshotError> {
    Ok(ContainerUsage {
        container: ContainerId::new(r.get_u32()?),
        cpu_used: Cores(r.get_f64()?),
        mem_used: MemMb(r.get_f64()?),
        net_used: Mbps(r.get_f64()?),
        disk_used: Mbps(r.get_f64()?),
        in_flight: r.get_usize()?,
        swapping: r.get_bool()?,
    })
}

/// Serializes one scaling action as a tag byte plus its fields
/// (snapshot support for pending actuation retries).
fn write_action(w: &mut SnapWriter, action: &ScalingAction) {
    match *action {
        ScalingAction::Update {
            container,
            cpu,
            mem,
        } => {
            w.put_u8(0);
            w.put_u32(container.index());
            w.put_opt_f64(cpu.map(|c| c.get()));
            w.put_opt_f64(mem.map(|m| m.get()));
        }
        ScalingAction::Spawn {
            service,
            node,
            cpu,
            mem,
        } => {
            w.put_u8(1);
            w.put_u32(service.index());
            w.put_u32(node.index());
            w.put_f64(cpu.get());
            w.put_f64(mem.get());
        }
        ScalingAction::Remove { container } => {
            w.put_u8(2);
            w.put_u32(container.index());
        }
        ScalingAction::SetNetCap { container, cap } => {
            w.put_u8(3);
            w.put_u32(container.index());
            w.put_opt_f64(cap.map(|c| c.get()));
        }
    }
}

/// Reads a scaling action written by [`write_action`].
fn read_action(r: &mut SnapReader<'_>) -> Result<ScalingAction, SnapshotError> {
    match r.get_u8()? {
        0 => Ok(ScalingAction::Update {
            container: ContainerId::new(r.get_u32()?),
            cpu: r.get_opt_f64()?.map(Cores),
            mem: r.get_opt_f64()?.map(MemMb),
        }),
        1 => Ok(ScalingAction::Spawn {
            service: ServiceId::new(r.get_u32()?),
            node: NodeId::new(r.get_u32()?),
            cpu: Cores(r.get_f64()?),
            mem: MemMb(r.get_f64()?),
        }),
        2 => Ok(ScalingAction::Remove {
            container: ContainerId::new(r.get_u32()?),
        }),
        3 => Ok(ScalingAction::SetNetCap {
            container: ContainerId::new(r.get_u32()?),
            cap: r.get_opt_f64()?.map(Mbps),
        }),
        tag => Err(SnapshotError::Corrupt(format!(
            "unknown scaling-action tag {tag}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_cluster::{Cores, Mbps, MemMb, ServiceId};

    fn usage(container: u32, cpu: f64) -> ContainerUsage {
        ContainerUsage {
            container: ContainerId::new(container),
            cpu_used: Cores(cpu),
            mem_used: MemMb(100.0),
            net_used: Mbps(1.0),
            disk_used: Mbps(0.0),
            in_flight: 1,
            swapping: false,
        }
    }

    fn spawn_action() -> ScalingAction {
        ScalingAction::Spawn {
            service: ServiceId::new(0),
            node: NodeId::new(0),
            cpu: Cores(0.5),
            mem: MemMb(256.0),
        }
    }

    #[test]
    fn perfect_config_delivers_everything_immediately() {
        let mut cp = ControlPlane::new(ControlPlaneConfig::perfect(), SimRng::seed_from(1));
        let mut trace = TraceSink::disabled();
        cp.begin_period(SimTime::ZERO, &mut trace);
        cp.transmit(
            NodeId::new(0),
            vec![usage(0, 0.5)],
            SimTime::ZERO,
            &mut trace,
        );
        let (sample, age) = cp.sample(ContainerId::new(0)).unwrap();
        assert_eq!(sample.cpu_used, Cores(0.5));
        assert_eq!(age, 0);
        assert_eq!(cp.node_age(NodeId::new(0)), 0);
        assert_eq!(cp.node_age(NodeId::new(9)), NEVER_REPORTED);
        assert_eq!(cp.stats, ControlPlaneStats::default());
    }

    #[test]
    fn certain_loss_drops_every_report() {
        let config = ControlPlaneConfig {
            enabled: true,
            loss_prob: 1.0,
            ..ControlPlaneConfig::perfect()
        };
        let mut cp = ControlPlane::new(config, SimRng::seed_from(2));
        let mut trace = TraceSink::with_capacity(16);
        cp.begin_period(SimTime::ZERO, &mut trace);
        cp.transmit(
            NodeId::new(0),
            vec![usage(0, 0.5)],
            SimTime::ZERO,
            &mut trace,
        );
        assert!(cp.sample(ContainerId::new(0)).is_none());
        assert_eq!(cp.stats.reports_lost, 1);
        assert_eq!(cp.node_age(NodeId::new(0)), NEVER_REPORTED);
        assert!(trace.events().any(|e| matches!(
            e.kind,
            EventKind::ReportLink {
                link: LinkTag::Lost,
                ..
            }
        )));
    }

    #[test]
    fn delayed_reports_arrive_late_with_measurement_age() {
        let config = ControlPlaneConfig {
            enabled: true,
            delay_prob: 1.0,
            max_delay_periods: 1,
            ..ControlPlaneConfig::perfect()
        };
        let mut cp = ControlPlane::new(config, SimRng::seed_from(3));
        let mut trace = TraceSink::with_capacity(16);
        cp.begin_period(SimTime::ZERO, &mut trace);
        cp.transmit(
            NodeId::new(0),
            vec![usage(0, 0.7)],
            SimTime::ZERO,
            &mut trace,
        );
        // Not delivered yet.
        assert!(cp.sample(ContainerId::new(0)).is_none());
        // Next period: the report lands, one period old.
        cp.begin_period(SimTime::from_secs(5.0), &mut trace);
        let (sample, age) = cp.sample(ContainerId::new(0)).unwrap();
        assert_eq!(sample.cpu_used, Cores(0.7));
        assert_eq!(age, 1);
        assert_eq!(cp.node_age(NodeId::new(0)), 1);
        assert_eq!(cp.stats.reports_late, 1);
        assert!(trace.events().any(|e| matches!(
            e.kind,
            EventKind::ReportLink {
                link: LinkTag::Late,
                delay_periods: 1,
                ..
            }
        )));
    }

    #[test]
    fn late_delivery_never_overwrites_fresher_data() {
        let config = ControlPlaneConfig {
            enabled: true,
            delay_prob: 1.0,
            max_delay_periods: 2,
            ..ControlPlaneConfig::perfect()
        };
        let mut cp = ControlPlane::new(config, SimRng::seed_from(4));
        let mut trace = TraceSink::disabled();
        cp.begin_period(SimTime::ZERO, &mut trace);
        cp.transmit(
            NodeId::new(0),
            vec![usage(0, 0.2)],
            SimTime::ZERO,
            &mut trace,
        );
        // Hand-deliver a fresher measurement before the delayed one lands.
        cp.begin_period(SimTime::from_secs(5.0), &mut trace);
        let fresh_period = cp.current_period();
        cp.deliver(NodeId::new(0), fresh_period, &[usage(0, 0.9)]);
        cp.begin_period(SimTime::from_secs(10.0), &mut trace);
        cp.begin_period(SimTime::from_secs(15.0), &mut trace);
        let (sample, _) = cp.sample(ContainerId::new(0)).unwrap();
        assert_eq!(sample.cpu_used, Cores(0.9), "stale data must not win");
        assert_eq!(cp.node_age(NodeId::new(0)), 2);
    }

    #[test]
    fn duplicates_are_idempotent_and_counted() {
        let config = ControlPlaneConfig {
            enabled: true,
            duplicate_prob: 1.0,
            ..ControlPlaneConfig::perfect()
        };
        let mut cp = ControlPlane::new(config, SimRng::seed_from(5));
        let mut trace = TraceSink::with_capacity(16);
        cp.begin_period(SimTime::ZERO, &mut trace);
        cp.transmit(
            NodeId::new(0),
            vec![usage(0, 0.4)],
            SimTime::ZERO,
            &mut trace,
        );
        assert_eq!(cp.stats.reports_duplicated, 1);
        let (sample, age) = cp.sample(ContainerId::new(0)).unwrap();
        assert_eq!(sample.cpu_used, Cores(0.4));
        assert_eq!(age, 0);
    }

    #[test]
    fn lost_ack_retry_is_deduplicated_by_key() {
        let config = ControlPlaneConfig {
            enabled: true,
            actuation_failure_prob: 1.0,
            lost_ack_frac: 1.0,
            retry_base_secs: 5.0,
            ..ControlPlaneConfig::perfect()
        };
        let mut cp = ControlPlane::new(config, SimRng::seed_from(6));
        let mut trace = TraceSink::with_capacity(16);
        let outcome = cp.submit(spawn_action(), SimTime::ZERO, &mut trace);
        assert_eq!(outcome, ActuationOutcome::ExecutedAckLost);
        assert!(outcome.executed());
        assert_eq!(cp.pending_retries(), 1);
        // The retry window arrives: the key shows it already executed,
        // so nothing is returned for re-execution.
        let actions = cp.due_retries(SimTime::from_secs(5.0), &mut trace);
        assert!(actions.is_empty());
        assert_eq!(cp.pending_retries(), 0);
        assert_eq!(cp.stats.actuations_deduped, 1);
        assert!(trace.events().any(|e| matches!(
            e.kind,
            EventKind::Actuation {
                outcome: ActuationTag::Deduped,
                ..
            }
        )));
    }

    #[test]
    fn dropped_actuation_retries_and_eventually_executes() {
        let config = ControlPlaneConfig {
            enabled: true,
            actuation_failure_prob: 1.0,
            lost_ack_frac: 0.0,
            retry_base_secs: 5.0,
            retry_max_secs: 40.0,
            max_actuation_retries: 10,
            ..ControlPlaneConfig::perfect()
        };
        let mut cp = ControlPlane::new(config, SimRng::seed_from(7));
        let mut trace = TraceSink::disabled();
        let outcome = cp.submit(spawn_action(), SimTime::ZERO, &mut trace);
        assert_eq!(outcome, ActuationOutcome::Dropped);
        // Too early: nothing happens, no RNG drawn.
        assert!(cp
            .due_retries(SimTime::from_secs(1.0), &mut trace)
            .is_empty());
        // First retry at 5 s fails again (prob 1.0); backoff doubles.
        assert!(cp
            .due_retries(SimTime::from_secs(5.0), &mut trace)
            .is_empty());
        assert_eq!(cp.pending_retries(), 1);
        // Flip to always-succeed and let the next window land.
        cp.config.actuation_failure_prob = 0.0;
        let actions = cp.due_retries(SimTime::from_secs(15.0), &mut trace);
        assert_eq!(actions, vec![spawn_action()]);
        assert_eq!(cp.pending_retries(), 0);
        assert!(cp.stats.actuation_retries >= 2);
    }

    #[test]
    fn retries_are_abandoned_after_the_budget() {
        let config = ControlPlaneConfig {
            enabled: true,
            actuation_failure_prob: 1.0,
            lost_ack_frac: 0.0,
            retry_base_secs: 1.0,
            retry_max_secs: 1.0,
            max_actuation_retries: 2,
            ..ControlPlaneConfig::perfect()
        };
        let mut cp = ControlPlane::new(config, SimRng::seed_from(8));
        let mut trace = TraceSink::with_capacity(16);
        assert_eq!(
            cp.submit(spawn_action(), SimTime::ZERO, &mut trace),
            ActuationOutcome::Dropped
        );
        let mut t = 0.0;
        for _ in 0..4 {
            t += 2.0;
            cp.due_retries(SimTime::from_secs(t), &mut trace);
        }
        assert_eq!(cp.pending_retries(), 0);
        assert_eq!(cp.stats.actuations_abandoned, 1);
        assert!(trace.events().any(|e| matches!(
            e.kind,
            EventKind::Actuation {
                outcome: ActuationTag::Abandoned,
                ..
            }
        )));
    }

    #[test]
    fn prune_missing_drops_vanished_containers() {
        let mut cp = ControlPlane::new(ControlPlaneConfig::perfect(), SimRng::seed_from(9));
        let mut trace = TraceSink::disabled();
        cp.begin_period(SimTime::ZERO, &mut trace);
        cp.transmit(
            NodeId::new(0),
            vec![usage(0, 0.1), usage(1, 0.2)],
            SimTime::ZERO,
            &mut trace,
        );
        cp.prune_missing(&[ContainerId::new(1)]);
        assert!(cp.sample(ContainerId::new(0)).is_none());
        assert!(cp.sample(ContainerId::new(1)).is_some());
    }

    #[test]
    fn config_validation_rejects_bad_probabilities() {
        assert!(ControlPlaneConfig::perfect().validate().is_ok());
        assert!(ControlPlaneConfig::degraded().validate().is_ok());
        assert!(ControlPlaneConfig {
            loss_prob: 1.5,
            ..ControlPlaneConfig::perfect()
        }
        .validate()
        .is_err());
        assert!(ControlPlaneConfig {
            delay_prob: 0.5,
            max_delay_periods: 0,
            ..ControlPlaneConfig::perfect()
        }
        .validate()
        .is_err());
        assert!(ControlPlaneConfig {
            retry_base_secs: 0.0,
            ..ControlPlaneConfig::perfect()
        }
        .validate()
        .is_err());
        assert!(ControlPlaneConfig {
            retry_base_secs: 10.0,
            retry_max_secs: 5.0,
            ..ControlPlaneConfig::perfect()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn same_seed_replays_identically() {
        let run = || {
            let mut cp = ControlPlane::new(ControlPlaneConfig::degraded(), SimRng::seed_from(42));
            let mut trace = TraceSink::disabled();
            for p in 0..20u64 {
                let now = SimTime::from_secs(p as f64 * 5.0);
                cp.begin_period(now, &mut trace);
                for n in 0..4u32 {
                    cp.transmit(
                        NodeId::new(n),
                        vec![usage(n, 0.1 * f64::from(n))],
                        now,
                        &mut trace,
                    );
                }
                let _ = cp.due_retries(now, &mut trace);
                let _ = cp.submit(spawn_action(), now, &mut trace);
            }
            (cp.stats, cp.pending_retries(), cp.node_age(NodeId::new(2)))
        };
        assert_eq!(run(), run());
    }
}
