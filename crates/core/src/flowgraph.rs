//! Runtime tracking of multi-tier request flow over a
//! [`ServiceGraph`](hyscale_workload::ServiceGraph).
//!
//! The graph itself (in `hyscale-workload`) is pure topology; this module
//! owns the driver-side state that walks it. Every client arrival on an
//! entry-point service opens a *root* — one logical user request. Each
//! admitted batch of work on some tier is a *hop*, keyed by the cluster's
//! aggregate [`RequestId`](hyscale_cluster::RequestId) base. When a hop
//! completes, one [`EventKind::Span`] is journaled (so the whole request
//! can be stitched back together from the trace by root id) and one child
//! hop per outgoing edge is queued; the driver admits queued hops at the
//! next tick, which is the inter-tier queueing delay. A root resolves
//! when no hops remain in flight or queued: end-to-end latency is the
//! last hop's finish minus the root's arrival, attributed to the entry
//! point that opened it.
//!
//! Failure is all-or-nothing: any failed or unadmitted hop marks the
//! whole root failed, and its member count lands in the entry point's
//! failed tally — a user request that lost any downstream RPC did not
//! succeed, even if sibling branches finished.
//!
//! All containers are `BTreeMap`s / in-order `Vec`s so snapshot
//! serialization is deterministic and resume is bit-exact.

use std::collections::BTreeMap;

use hyscale_cluster::{CompletedRequest, FailedRequest, ServiceId};
use hyscale_metrics::Summary;
use hyscale_sim::{SimTime, SnapReader, SnapWriter, SnapshotError};
use hyscale_trace::{EventKind, TraceSink};
use hyscale_workload::ServiceGraph;
use hyscale_workload::ServiceSpec;

/// End-to-end outcomes for one entry-point service of a
/// [`ServiceGraph`](hyscale_workload::ServiceGraph) scenario.
///
/// Counts are in *root* (logical user request) and *member* units: a
/// cohort of `n` arrivals on the entry point opens one root with `n`
/// members, and every member of a successful root contributes one
/// end-to-end latency sample.
#[derive(Debug, Clone)]
pub struct EntryPointStats {
    /// The entry-point service these outcomes belong to.
    pub service: ServiceId,
    /// Roots opened (one per entry-point arrival event or cohort batch).
    pub roots_started: u64,
    /// Roots whose every hop completed.
    pub roots_completed: u64,
    /// Roots that lost at least one hop (admission rejection, timeout,
    /// abort, or infrastructure failure anywhere in the graph).
    pub roots_failed: u64,
    /// Members of completed roots.
    pub members_completed: u64,
    /// Members of failed roots.
    pub members_failed: u64,
    /// End-to-end latency (seconds) of completed roots, one sample per
    /// member: last hop finish minus entry arrival.
    pub e2e_secs: Summary,
}

impl EntryPointStats {
    fn new(service: ServiceId) -> Self {
        EntryPointStats {
            service,
            roots_started: 0,
            roots_completed: 0,
            roots_failed: 0,
            members_completed: 0,
            members_failed: 0,
            e2e_secs: Summary::new(),
        }
    }

    /// End-to-end p95, in seconds (0.0 with no completed roots).
    pub fn p95_secs(&self) -> f64 {
        self.e2e_secs.percentile(95.0)
    }

    /// End-to-end p99, in seconds (0.0 with no completed roots).
    pub fn p99_secs(&self) -> f64 {
        self.e2e_secs.percentile(99.0)
    }

    /// Folds another seed's outcomes for the same entry point into this
    /// one (used by `run_averaged`).
    pub fn merge(&mut self, other: &EntryPointStats) {
        self.roots_started += other.roots_started;
        self.roots_completed += other.roots_completed;
        self.roots_failed += other.roots_failed;
        self.members_completed += other.members_completed;
        self.members_failed += other.members_failed;
        self.e2e_secs.merge(&other.e2e_secs);
    }
}

/// A child hop queued by a completed parent, waiting for the next tick's
/// admission pass. Demands are fully materialized at queue time (child
/// base demands × edge multipliers) so processing needs no graph lookups
/// — and, deliberately, no RNG draws: derived traffic must not perturb
/// the workload streams shared with graph-free runs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingHop {
    /// Index of the child service in the scenario's service list.
    pub service: usize,
    /// Hop depth (entry point = 0).
    pub depth: u32,
    /// The root this hop belongs to.
    pub root: u64,
    /// Member requests in the hop.
    pub count: u64,
    /// CPU core-seconds per member.
    pub cpu_secs: f64,
    /// In-flight memory per member, MB.
    pub mem_mb: f64,
    /// Egress megabits per member.
    pub megabits: f64,
    /// Disk megabits per member.
    pub disk_megabits: f64,
    /// When the parent hop finished (the child's arrival time).
    pub arrival: SimTime,
}

/// One logical user request in flight across the graph.
#[derive(Debug, Clone, Copy)]
struct RootRecord {
    /// Slot in `entry_stats` of the entry point that opened this root.
    entry: usize,
    /// When the entry arrival happened.
    arrival: SimTime,
    /// Member requests that arrived at the entry point.
    members: u64,
    /// In-flight hop records plus queued [`PendingHop`]s; the root
    /// resolves when this reaches zero.
    pending: u32,
    /// Whether any hop was lost.
    failed: bool,
    /// Latest hop finish time seen so far.
    last_finish: SimTime,
}

/// An admitted batch of work on one tier, keyed by its aggregate request
/// id base (the cluster reports exactly one completion or failure record
/// per admitted batch).
#[derive(Debug, Clone, Copy)]
struct HopRecord {
    root: u64,
    depth: u32,
}

/// Driver-side runtime state for a graph scenario.
#[derive(Debug, Clone)]
pub(crate) struct GraphTracker {
    graph: ServiceGraph,
    /// ServiceId index → position in the scenario's service list.
    id_to_idx: BTreeMap<u32, usize>,
    /// Service-list position → slot in `entry_stats` (None for
    /// non-entry services).
    entry_slot: Vec<Option<usize>>,
    next_root: u64,
    roots: BTreeMap<u64, RootRecord>,
    hops: BTreeMap<u64, HopRecord>,
    pending: Vec<PendingHop>,
    entry_stats: Vec<EntryPointStats>,
}

impl GraphTracker {
    /// Builds the tracker for a validated graph over `services`.
    pub fn new(graph: ServiceGraph, services: &[ServiceSpec]) -> Self {
        let id_to_idx = services
            .iter()
            .enumerate()
            .map(|(idx, s)| (s.id.index(), idx))
            .collect();
        let mut entry_slot = vec![None; services.len()];
        let mut entry_stats = Vec::new();
        for idx in graph.entry_points() {
            entry_slot[idx] = Some(entry_stats.len());
            entry_stats.push(EntryPointStats::new(services[idx].id));
        }
        GraphTracker {
            graph,
            id_to_idx,
            entry_slot,
            next_root: 0,
            roots: BTreeMap::new(),
            hops: BTreeMap::new(),
            pending: Vec::new(),
            entry_stats,
        }
    }

    /// Whether client load attaches to the service at list position
    /// `idx`.
    pub fn is_entry(&self, idx: usize) -> bool {
        self.entry_slot.get(idx).is_some_and(Option::is_some)
    }

    /// Opens a root for `members` arrivals on the entry point at list
    /// position `idx`; hops must then be registered (or the root failed)
    /// before [`GraphTracker::seal_root`].
    pub fn begin_root(&mut self, idx: usize, arrival: SimTime, members: u64) -> u64 {
        let slot = self.entry_slot[idx].expect("begin_root on a non-entry service");
        self.entry_stats[slot].roots_started += 1;
        let id = self.next_root;
        self.next_root += 1;
        self.roots.insert(
            id,
            RootRecord {
                entry: slot,
                arrival,
                members,
                pending: 0,
                failed: false,
                last_finish: arrival,
            },
        );
        id
    }

    /// Ties an admitted batch (aggregate id base `id_base`) at `depth` to
    /// its root.
    pub fn register_hop(&mut self, root: u64, id_base: u64, depth: u32) {
        let record = self.roots.get_mut(&root).expect("hop for unknown root");
        record.pending += 1;
        self.hops.insert(id_base, HopRecord { root, depth });
    }

    /// Marks the root failed (lost members at admission or in flight).
    /// The root still waits for its surviving hops before resolving.
    pub fn fail_root(&mut self, root: u64) {
        if let Some(record) = self.roots.get_mut(&root) {
            record.failed = true;
        }
    }

    /// Resolves the root immediately if nothing was admitted for it
    /// (entry arrivals that were fully rejected never get a completion
    /// sweep to resolve them).
    pub fn seal_root(&mut self, root: u64) {
        if self.roots.get(&root).is_some_and(|r| r.pending == 0) {
            self.resolve(root);
        }
    }

    /// Settles one processed [`PendingHop`] of `root`: the queued entry
    /// no longer counts toward `pending` (any admitted shares were
    /// re-counted by [`GraphTracker::register_hop`]).
    pub fn settle_queued(&mut self, root: u64) {
        let record = self
            .roots
            .get_mut(&root)
            .expect("queued hop for unknown root");
        record.pending -= 1;
        if record.pending == 0 {
            self.resolve(root);
        }
    }

    /// Handles one completed batch from the cluster's sweep: journals the
    /// hop's span, queues one child hop per outgoing edge (demands =
    /// child base demands × edge multipliers, count = completed members ×
    /// fan-out), and resolves the root if this was its last outstanding
    /// hop.
    pub fn on_completed(
        &mut self,
        done: &CompletedRequest,
        services: &[ServiceSpec],
        trace: &mut TraceSink,
        traced: bool,
    ) {
        let Some(hop) = self.hops.remove(&done.id.index()) else {
            return;
        };
        let record = self.roots.get_mut(&hop.root).expect("hop without root");
        if traced {
            trace.emit(
                done.finished,
                EventKind::Span {
                    root: hop.root,
                    entry: self.entry_stats[record.entry].service.index(),
                    service: done.service.index(),
                    depth: hop.depth,
                    count: done.count,
                    queue_us: (done.admitted - done.arrival).as_micros(),
                    service_us: (done.finished - done.admitted).as_micros(),
                },
            );
        }
        if done.finished > record.last_finish {
            record.last_finish = done.finished;
        }
        let parent_idx = self.id_to_idx[&done.service.index()];
        let mut spawned = 0u32;
        for edge in self.graph.children(parent_idx) {
            let child = &services[edge.child];
            self.pending.push(PendingHop {
                service: edge.child,
                depth: hop.depth + 1,
                root: hop.root,
                count: done.count * edge.fan_out,
                cpu_secs: child.cpu_secs_per_req * edge.cpu_mult,
                mem_mb: child.mem_per_req.get() * edge.mem_mult,
                megabits: child.megabits_per_req * edge.net_mult,
                disk_megabits: child.disk_megabits_per_req * edge.disk_mult,
                arrival: done.finished,
            });
            spawned += 1;
        }
        let record = self.roots.get_mut(&hop.root).expect("hop without root");
        record.pending += spawned;
        record.pending -= 1;
        if record.pending == 0 {
            self.resolve(hop.root);
        }
    }

    /// Handles one failed batch: the whole root is failed, no children
    /// spawn, and the root resolves once its other hops drain.
    pub fn on_failed(&mut self, failure: &FailedRequest) {
        let Some(hop) = self.hops.remove(&failure.id.index()) else {
            return;
        };
        let record = self.roots.get_mut(&hop.root).expect("hop without root");
        record.failed = true;
        record.pending -= 1;
        if record.pending == 0 {
            self.resolve(hop.root);
        }
    }

    /// Moves the queued child hops out for the driver's admission pass
    /// (in spawn order, which is deterministic).
    pub fn take_pending(&mut self) -> Vec<PendingHop> {
        std::mem::take(&mut self.pending)
    }

    /// Returns the drained scratch vector for reuse next tick.
    pub fn return_pending_scratch(&mut self, mut scratch: Vec<PendingHop>) {
        if self.pending.is_empty() {
            scratch.clear();
            self.pending = scratch;
        }
    }

    /// Whether any child hops await admission.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Whether the tracker holds no in-flight or queued work at all —
    /// the time-warp fast path must not jump over queued child hops.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.hops.is_empty() && self.roots.is_empty()
    }

    fn resolve(&mut self, root: u64) {
        let record = self.roots.remove(&root).expect("resolving unknown root");
        let stats = &mut self.entry_stats[record.entry];
        if record.failed {
            stats.roots_failed += 1;
            stats.members_failed += record.members;
        } else {
            stats.roots_completed += 1;
            stats.members_completed += record.members;
            let secs = (record.last_finish - record.arrival).as_secs();
            for _ in 0..record.members {
                stats.e2e_secs.record(secs);
            }
        }
    }

    /// Consumes the tracker into its per-entry-point report rows.
    pub fn into_entry_stats(self) -> Vec<EntryPointStats> {
        self.entry_stats
    }

    /// Read access for the end-of-run counter dump.
    pub fn entry_stats(&self) -> &[EntryPointStats] {
        &self.entry_stats
    }

    /// Serializes the full tracker state (mirrored by
    /// [`GraphTracker::snapshot_restore`]).
    pub fn snapshot_write(&self, w: &mut SnapWriter) {
        w.put_u64(self.next_root);
        w.put_usize(self.roots.len());
        for (&id, r) in &self.roots {
            w.put_u64(id);
            w.put_usize(r.entry);
            w.put_u64(r.arrival.as_micros());
            w.put_u64(r.members);
            w.put_u32(r.pending);
            w.put_u8(r.failed as u8);
            w.put_u64(r.last_finish.as_micros());
        }
        w.put_usize(self.hops.len());
        for (&id_base, h) in &self.hops {
            w.put_u64(id_base);
            w.put_u64(h.root);
            w.put_u32(h.depth);
        }
        w.put_usize(self.pending.len());
        for p in &self.pending {
            w.put_usize(p.service);
            w.put_u32(p.depth);
            w.put_u64(p.root);
            w.put_u64(p.count);
            w.put_f64(p.cpu_secs);
            w.put_f64(p.mem_mb);
            w.put_f64(p.megabits);
            w.put_f64(p.disk_megabits);
            w.put_u64(p.arrival.as_micros());
        }
        w.put_usize(self.entry_stats.len());
        for s in &self.entry_stats {
            w.put_u32(s.service.index());
            w.put_u64(s.roots_started);
            w.put_u64(s.roots_completed);
            w.put_u64(s.roots_failed);
            w.put_u64(s.members_completed);
            w.put_u64(s.members_failed);
            let samples = s.e2e_secs.samples();
            w.put_usize(samples.len());
            for &v in samples {
                w.put_f64(v);
            }
            w.put_u64(s.e2e_secs.nan_dropped());
        }
    }

    /// Restores state written by [`GraphTracker::snapshot_write`] into a
    /// freshly built tracker (topology comes from the config, which the
    /// snapshot's config digest already pinned).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] when the payload disagrees
    /// with the scenario's entry-point layout.
    pub fn snapshot_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.next_root = r.get_u64()?;
        self.roots.clear();
        for _ in 0..r.get_usize()? {
            let id = r.get_u64()?;
            let entry = r.get_usize()?;
            if entry >= self.entry_stats.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "root {id} references entry slot {entry} of {}",
                    self.entry_stats.len()
                )));
            }
            self.roots.insert(
                id,
                RootRecord {
                    entry,
                    arrival: SimTime::from_micros(r.get_u64()?),
                    members: r.get_u64()?,
                    pending: r.get_u32()?,
                    failed: r.get_u8()? != 0,
                    last_finish: SimTime::from_micros(r.get_u64()?),
                },
            );
        }
        self.hops.clear();
        for _ in 0..r.get_usize()? {
            let id_base = r.get_u64()?;
            let root = r.get_u64()?;
            let depth = r.get_u32()?;
            self.hops.insert(id_base, HopRecord { root, depth });
        }
        self.pending.clear();
        for _ in 0..r.get_usize()? {
            let service = r.get_usize()?;
            if service >= self.entry_slot.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "pending hop references service index {service} of {}",
                    self.entry_slot.len()
                )));
            }
            self.pending.push(PendingHop {
                service,
                depth: r.get_u32()?,
                root: r.get_u64()?,
                count: r.get_u64()?,
                cpu_secs: r.get_f64()?,
                mem_mb: r.get_f64()?,
                megabits: r.get_f64()?,
                disk_megabits: r.get_f64()?,
                arrival: SimTime::from_micros(r.get_u64()?),
            });
        }
        let n = r.get_usize()?;
        if n != self.entry_stats.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot carries {n} entry points, scenario has {}",
                self.entry_stats.len()
            )));
        }
        for s in self.entry_stats.iter_mut() {
            let svc = r.get_u32()?;
            if svc != s.service.index() {
                return Err(SnapshotError::Corrupt(format!(
                    "entry point order mismatch: snapshot {svc}, scenario {}",
                    s.service.index()
                )));
            }
            s.roots_started = r.get_u64()?;
            s.roots_completed = r.get_u64()?;
            s.roots_failed = r.get_u64()?;
            s.members_completed = r.get_u64()?;
            s.members_failed = r.get_u64()?;
            s.e2e_secs = Summary::new();
            for _ in 0..r.get_usize()? {
                s.e2e_secs.record(r.get_f64()?);
            }
            for _ in 0..r.get_u64()? {
                s.e2e_secs.record(f64::NAN);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_cluster::{ContainerId, FailureKind, RequestId};
    use hyscale_workload::{LoadPattern, ServiceProfile};

    fn services(n: u32) -> Vec<ServiceSpec> {
        (0..n)
            .map(|i| ServiceSpec::synthetic(i, ServiceProfile::CpuBound, LoadPattern::low_burst()))
            .collect()
    }

    fn completed(id: u64, service: u32, count: u64, finished_secs: f64) -> CompletedRequest {
        let finished = SimTime::from_secs(finished_secs);
        CompletedRequest {
            id: RequestId::new(id),
            count,
            service: ServiceId::new(service),
            container: ContainerId::new(0),
            arrival: SimTime::ZERO,
            admitted: SimTime::from_secs(0.1),
            finished,
            response_time: finished - SimTime::ZERO,
        }
    }

    #[test]
    fn three_tier_root_resolves_with_e2e_latency() {
        let specs = services(3);
        let graph = ServiceGraph::new(3).with_edge(0, 1, 2).with_edge(1, 2, 1);
        let mut t = GraphTracker::new(graph, &specs);
        assert!(t.is_entry(0));
        assert!(!t.is_entry(1));

        let root = t.begin_root(0, SimTime::ZERO, 5);
        t.register_hop(root, 100, 0);
        t.seal_root(root);
        assert!(!t.is_idle());

        let mut sink = TraceSink::disabled();
        t.on_completed(&completed(100, 0, 5, 1.0), &specs, &mut sink, false);
        // The entry hop spawned one pending child (service 1, 5×2
        // members); the root is still open.
        assert!(t.has_pending());
        let pending = t.take_pending();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].service, 1);
        assert_eq!(pending[0].count, 10);
        assert_eq!(pending[0].depth, 1);

        t.register_hop(root, 200, 1);
        t.settle_queued(root);
        t.on_completed(&completed(200, 1, 10, 2.0), &specs, &mut sink, false);
        let pending = t.take_pending();
        assert_eq!(pending[0].service, 2);
        t.register_hop(root, 300, 2);
        t.settle_queued(root);
        t.on_completed(&completed(300, 2, 10, 3.5), &specs, &mut sink, false);

        assert!(t.is_idle());
        let stats = t.into_entry_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].roots_completed, 1);
        assert_eq!(stats[0].members_completed, 5);
        assert_eq!(stats[0].e2e_secs.count(), 5);
        assert!((stats[0].e2e_secs.max() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn any_failed_hop_fails_the_whole_root() {
        let specs = services(2);
        let graph = ServiceGraph::new(2).with_edge(0, 1, 1);
        let mut t = GraphTracker::new(graph, &specs);
        let root = t.begin_root(0, SimTime::ZERO, 3);
        t.register_hop(root, 10, 0);
        t.seal_root(root);
        let mut sink = TraceSink::disabled();
        t.on_completed(&completed(10, 0, 3, 1.0), &specs, &mut sink, false);
        let _ = t.take_pending();
        t.register_hop(root, 20, 1);
        t.settle_queued(root);
        t.on_failed(&FailedRequest {
            id: RequestId::new(20),
            count: 3,
            service: ServiceId::new(1),
            container: Some(ContainerId::new(0)),
            arrival: SimTime::from_secs(1.0),
            failed_at: SimTime::from_secs(2.0),
            kind: FailureKind::Connection,
        });
        assert!(t.is_idle());
        let stats = t.into_entry_stats();
        assert_eq!(stats[0].roots_failed, 1);
        assert_eq!(stats[0].members_failed, 3);
        assert_eq!(stats[0].roots_completed, 0);
        assert!(stats[0].e2e_secs.is_empty());
    }

    #[test]
    fn fully_rejected_entry_resolves_as_failed_on_seal() {
        let specs = services(1);
        let mut t = GraphTracker::new(ServiceGraph::new(1), &specs);
        let root = t.begin_root(0, SimTime::ZERO, 4);
        t.fail_root(root);
        t.seal_root(root);
        assert!(t.is_idle());
        let stats = t.into_entry_stats();
        assert_eq!(stats[0].roots_started, 1);
        assert_eq!(stats[0].roots_failed, 1);
        assert_eq!(stats[0].members_failed, 4);
    }

    #[test]
    fn edge_multipliers_scale_child_demands() {
        let specs = services(2);
        let graph = ServiceGraph::new(2).with_edge_spec(
            hyscale_workload::GraphEdge::new(0, 1, 3)
                .with_costs(2.0, 0.5)
                .with_mem_disk(4.0, 8.0),
        );
        let mut t = GraphTracker::new(graph, &specs);
        let root = t.begin_root(0, SimTime::ZERO, 1);
        t.register_hop(root, 1, 0);
        let mut sink = TraceSink::disabled();
        t.on_completed(&completed(1, 0, 1, 1.0), &specs, &mut sink, false);
        let pending = t.take_pending();
        let child = &specs[1];
        assert_eq!(pending[0].count, 3);
        assert!((pending[0].cpu_secs - child.cpu_secs_per_req * 2.0).abs() < 1e-12);
        assert!((pending[0].megabits - child.megabits_per_req * 0.5).abs() < 1e-12);
        assert!((pending[0].mem_mb - child.mem_per_req.get() * 4.0).abs() < 1e-12);
        assert!((pending[0].disk_megabits - child.disk_megabits_per_req * 8.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_round_trips_mid_flight_state() {
        let specs = services(3);
        let graph = ServiceGraph::new(3).with_edge(0, 1, 2).with_edge(0, 2, 1);
        let mut t = GraphTracker::new(graph.clone(), &specs);
        let root = t.begin_root(0, SimTime::from_secs(1.0), 2);
        t.register_hop(root, 50, 0);
        let mut sink = TraceSink::disabled();
        t.on_completed(&completed(50, 0, 2, 2.0), &specs, &mut sink, false);
        // Two pending children, root open. Also one fully resolved root.
        let done_root = t.begin_root(0, SimTime::ZERO, 1);
        t.register_hop(done_root, 60, 0);
        // Complete it on a childless path by failing it instead.
        t.fail_root(done_root);
        t.on_failed(&FailedRequest {
            id: RequestId::new(60),
            count: 1,
            service: ServiceId::new(0),
            container: Some(ContainerId::new(0)),
            arrival: SimTime::ZERO,
            failed_at: SimTime::from_secs(1.0),
            kind: FailureKind::Removal,
        });

        let mut w = SnapWriter::new();
        t.snapshot_write(&mut w);
        let first = w.finish();

        let mut restored = GraphTracker::new(graph, &specs);
        let mut r = SnapReader::open(&first).unwrap();
        restored.snapshot_restore(&mut r).unwrap();
        r.expect_done().unwrap();

        let mut w2 = SnapWriter::new();
        restored.snapshot_write(&mut w2);
        assert_eq!(first, w2.finish(), "restore must be bit-exact");
        assert!(restored.has_pending());
        assert_eq!(restored.entry_stats()[0].roots_failed, 1);
    }
}
