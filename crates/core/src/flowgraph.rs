//! Runtime tracking of multi-tier request flow over a
//! [`ServiceGraph`](hyscale_workload::ServiceGraph).
//!
//! The graph itself (in `hyscale-workload`) is pure topology; this module
//! owns the driver-side state that walks it. Every client arrival on an
//! entry-point service opens a *root* — one logical user request. Each
//! admitted batch of work on some tier is a *hop*, keyed by the cluster's
//! aggregate [`RequestId`](hyscale_cluster::RequestId) base. When a hop
//! completes, one [`EventKind::Span`] is journaled (so the whole request
//! can be stitched back together from the trace by root id) and one child
//! hop per outgoing edge is queued; the driver admits queued hops at the
//! next tick, which is the inter-tier queueing delay. A root resolves
//! when no hops remain in flight or queued: end-to-end latency is the
//! last hop's finish minus the root's arrival, attributed to the entry
//! point that opened it.
//!
//! With the resilience layer disabled, failure is all-or-nothing: any
//! failed or unadmitted hop marks the whole root failed, and its member
//! count lands in the entry point's failed tally — a user request that
//! lost any downstream RPC did not succeed, even if sibling branches
//! finished. With a [`ResilienceConfig`] enabled, a retryable lost hop
//! instead re-queues as a fresh [`PendingHop`] after an exponential
//! backoff (seeded jitter drawn from the driver's dedicated resilience
//! RNG split, in the serial phase), bounded by the per-edge
//! [`RetryPolicy`]'s attempt cap, the root's end-to-end deadline, and
//! the per-service retry-budget token bucket replenished by successful
//! completions.
//!
//! All containers are `BTreeMap`s / in-order `Vec`s so snapshot
//! serialization is deterministic and resume is bit-exact.

use std::collections::BTreeMap;

use hyscale_cluster::{CompletedRequest, FailedRequest, FailureKind, ServiceId};
use hyscale_metrics::Summary;
use hyscale_sim::{SimDuration, SimRng, SimTime, SnapReader, SnapWriter, SnapshotError};
use hyscale_trace::{EventKind, TraceSink};
use hyscale_workload::RetryPolicy;
use hyscale_workload::ServiceGraph;
use hyscale_workload::ServiceSpec;

use crate::resilience::{ResilienceConfig, ResilienceStats};

/// End-to-end outcomes for one entry-point service of a
/// [`ServiceGraph`](hyscale_workload::ServiceGraph) scenario.
///
/// Counts are in *root* (logical user request) and *member* units: a
/// cohort of `n` arrivals on the entry point opens one root with `n`
/// members, and every member of a successful root contributes one
/// end-to-end latency sample.
#[derive(Debug, Clone)]
pub struct EntryPointStats {
    /// The entry-point service these outcomes belong to.
    pub service: ServiceId,
    /// Roots opened (one per entry-point arrival event or cohort batch).
    pub roots_started: u64,
    /// Roots whose every hop completed.
    pub roots_completed: u64,
    /// Roots that lost at least one hop (admission rejection, timeout,
    /// abort, or infrastructure failure anywhere in the graph) beyond
    /// what retries recovered.
    pub roots_failed: u64,
    /// Members of completed roots.
    pub members_completed: u64,
    /// Members of failed roots.
    pub members_failed: u64,
    /// End-to-end latency (seconds) of completed roots, one sample per
    /// member: last hop finish minus entry arrival.
    pub e2e_secs: Summary,
}

impl EntryPointStats {
    fn new(service: ServiceId) -> Self {
        EntryPointStats {
            service,
            roots_started: 0,
            roots_completed: 0,
            roots_failed: 0,
            members_completed: 0,
            members_failed: 0,
            e2e_secs: Summary::new(),
        }
    }

    /// End-to-end p95, in seconds (0.0 with no completed roots).
    pub fn p95_secs(&self) -> f64 {
        self.e2e_secs.percentile(95.0)
    }

    /// End-to-end p99, in seconds (0.0 with no completed roots).
    pub fn p99_secs(&self) -> f64 {
        self.e2e_secs.percentile(99.0)
    }

    /// Folds another seed's outcomes for the same entry point into this
    /// one (used by `run_averaged`).
    pub fn merge(&mut self, other: &EntryPointStats) {
        self.roots_started += other.roots_started;
        self.roots_completed += other.roots_completed;
        self.roots_failed += other.roots_failed;
        self.members_completed += other.members_completed;
        self.members_failed += other.members_failed;
        self.e2e_secs.merge(&other.e2e_secs);
    }
}

/// A child hop queued by a completed parent (or a retry queued by a lost
/// hop), waiting for an admission pass. Demands are fully materialized
/// at queue time (child base demands × edge multipliers) so processing
/// needs no graph lookups — and, deliberately, no RNG draws: derived
/// traffic must not perturb the workload streams shared with graph-free
/// runs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingHop {
    /// Index of the child service in the scenario's service list.
    pub service: usize,
    /// Hop depth (entry point = 0).
    pub depth: u32,
    /// The root this hop belongs to.
    pub root: u64,
    /// Member requests in the hop.
    pub count: u64,
    /// CPU core-seconds per member.
    pub cpu_secs: f64,
    /// In-flight memory per member, MB.
    pub mem_mb: f64,
    /// Egress megabits per member.
    pub megabits: f64,
    /// Disk megabits per member.
    pub disk_megabits: f64,
    /// When the parent hop finished (the child's arrival time) — or,
    /// for a retry, when its backoff expires; the driver admits the hop
    /// at the first tick at or after this time.
    pub arrival: SimTime,
    /// Delivery attempts already made (0 = a fresh hop).
    pub attempt: u32,
    /// Index into the tracker's policy table (0 = scenario default,
    /// `i + 1` = edge `i`'s override).
    pub policy: u32,
}

/// One logical user request in flight across the graph.
#[derive(Debug, Clone, Copy)]
struct RootRecord {
    /// Slot in `entry_stats` of the entry point that opened this root.
    entry: usize,
    /// When the entry arrival happened.
    arrival: SimTime,
    /// Member requests that arrived at the entry point.
    members: u64,
    /// In-flight hop records plus queued [`PendingHop`]s; the root
    /// resolves when this reaches zero.
    pending: u32,
    /// Whether any hop was lost (beyond what retries recovered).
    failed: bool,
    /// Latest hop finish time seen so far.
    last_finish: SimTime,
    /// End-to-end deadline: the root must fully resolve by this time
    /// ([`SimTime::MAX`] = unlimited). Hops inherit
    /// `min(remaining budget, service timeout)` from it.
    deadline: SimTime,
    /// Member completions accumulated under this root (across all hops)
    /// — the goodput-vs-wasted split charged at resolution.
    work_members: u64,
}

/// An admitted batch of work on one tier, keyed by its aggregate request
/// id base (the cluster reports exactly one completion or failure record
/// per admitted batch). Carries the per-member demands so a lost batch
/// can be re-queued as a retry without re-deriving them (the cluster's
/// failure records carry no demand information).
#[derive(Debug, Clone, Copy)]
struct HopRecord {
    root: u64,
    depth: u32,
    /// Index of the hop's service in the scenario's service list.
    service: usize,
    /// Delivery attempts already made including this one minus one
    /// (0 = first attempt in flight).
    attempt: u32,
    /// Index into the tracker's policy table.
    policy: u32,
    cpu_secs: f64,
    mem_mb: f64,
    megabits: f64,
    disk_megabits: f64,
}

/// Driver-side runtime state for a graph scenario.
#[derive(Debug, Clone)]
pub(crate) struct GraphTracker {
    graph: ServiceGraph,
    /// ServiceId index → position in the scenario's service list.
    id_to_idx: BTreeMap<u32, usize>,
    /// Service-list position → numeric ServiceId (for trace events).
    service_ids: Vec<u32>,
    /// Service-list position → slot in `entry_stats` (None for
    /// non-entry services).
    entry_slot: Vec<Option<usize>>,
    next_root: u64,
    roots: BTreeMap<u64, RootRecord>,
    hops: BTreeMap<u64, HopRecord>,
    pending: Vec<PendingHop>,
    entry_stats: Vec<EntryPointStats>,
    /// Resilience knobs (disabled = the legacy all-or-nothing model).
    resilience: ResilienceConfig,
    /// Policy table: slot 0 is the scenario default, slot `i + 1` is
    /// edge `i`'s effective policy. Rebuilt from config, never
    /// snapshotted — hops serialize only their table index.
    policies: Vec<RetryPolicy>,
    /// Per-service retry-budget tokens (member units). Empty when the
    /// budget is unbounded.
    tokens: Vec<f64>,
    /// Run counters for the resilience layer.
    stats: ResilienceStats,
}

impl GraphTracker {
    /// Builds the tracker for a validated graph over `services`.
    pub fn new(
        graph: ServiceGraph,
        services: &[ServiceSpec],
        resilience: ResilienceConfig,
    ) -> Self {
        let id_to_idx = services
            .iter()
            .enumerate()
            .map(|(idx, s)| (s.id.index(), idx))
            .collect();
        let service_ids = services.iter().map(|s| s.id.index()).collect();
        let mut entry_slot = vec![None; services.len()];
        let mut entry_stats = Vec::new();
        for idx in graph.entry_points() {
            entry_slot[idx] = Some(entry_stats.len());
            entry_stats.push(EntryPointStats::new(services[idx].id));
        }
        let mut policies = Vec::with_capacity(graph.edges().len() + 1);
        policies.push(resilience.default_policy);
        for edge in graph.edges() {
            policies.push(edge.retry.unwrap_or(resilience.default_policy));
        }
        let tokens = if resilience.enabled && resilience.has_retry_budget() {
            vec![resilience.budget_floor; services.len()]
        } else {
            Vec::new()
        };
        GraphTracker {
            graph,
            id_to_idx,
            service_ids,
            entry_slot,
            next_root: 0,
            roots: BTreeMap::new(),
            hops: BTreeMap::new(),
            pending: Vec::new(),
            entry_stats,
            resilience,
            policies,
            tokens,
            stats: ResilienceStats::default(),
        }
    }

    /// Whether client load attaches to the service at list position
    /// `idx`.
    pub fn is_entry(&self, idx: usize) -> bool {
        self.entry_slot.get(idx).is_some_and(Option::is_some)
    }

    /// Whether overload shedding is armed (resilience on, watermark set).
    pub fn sheds(&self) -> bool {
        self.resilience.enabled && self.resilience.shed_watermark > 0
    }

    /// The in-flight member watermark at or above which new roots shed.
    pub fn shed_watermark(&self) -> u64 {
        self.resilience.shed_watermark
    }

    /// Records one shed root of `members` arrivals on the entry point at
    /// list position `idx` (dropped unissued — counted as shed, not
    /// failed, while in-flight work drains).
    pub fn record_shed(
        &mut self,
        idx: usize,
        members: u64,
        in_flight: u64,
        now: SimTime,
        trace: &mut TraceSink,
        traced: bool,
    ) {
        debug_assert!(self.is_entry(idx), "shed on a non-entry service");
        self.stats.shed_roots += 1;
        self.stats.shed_members += members;
        if traced {
            trace.emit(
                now,
                EventKind::Shed {
                    service: self.service_ids[idx],
                    count: members,
                    in_flight,
                },
            );
        }
    }

    /// Run counters for the resilience layer (all zero when disabled).
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.stats
    }

    /// Opens a root for `members` arrivals on the entry point at list
    /// position `idx`; hops must then be registered (or the root failed)
    /// before [`GraphTracker::seal_root`].
    pub fn begin_root(&mut self, idx: usize, arrival: SimTime, members: u64) -> u64 {
        let slot = self.entry_slot[idx].expect("begin_root on a non-entry service");
        self.entry_stats[slot].roots_started += 1;
        let id = self.next_root;
        self.next_root += 1;
        let deadline = if self.resilience.enabled && self.resilience.has_root_budget() {
            arrival + SimDuration::from_secs(self.resilience.root_budget_secs)
        } else {
            SimTime::MAX
        };
        self.roots.insert(
            id,
            RootRecord {
                entry: slot,
                arrival,
                members,
                pending: 0,
                failed: false,
                last_finish: arrival,
                deadline,
                work_members: 0,
            },
        );
        id
    }

    /// The deadline-aware timeout for a hop of `root` arriving at
    /// `arrival`: `min(service timeout, remaining deadline budget)`.
    /// Exactly `service_timeout` when the layer is disabled or the root
    /// carries no deadline, so disabled runs stay bit-identical.
    pub fn hop_timeout(
        &self,
        root: u64,
        arrival: SimTime,
        service_timeout: SimDuration,
    ) -> SimDuration {
        let Some(record) = self.roots.get(&root) else {
            return service_timeout;
        };
        if record.deadline == SimTime::MAX {
            return service_timeout;
        }
        service_timeout.min(record.deadline.saturating_since(arrival))
    }

    /// Ties an admitted batch (aggregate id base `id_base`) to its root,
    /// copying the hop descriptor's demands so a lost batch can retry.
    pub fn register_hop(&mut self, root: u64, id_base: u64, hop: &PendingHop) {
        debug_assert_eq!(hop.root, root, "hop descriptor for a different root");
        let record = self.roots.get_mut(&root).expect("hop for unknown root");
        record.pending += 1;
        self.hops.insert(
            id_base,
            HopRecord {
                root,
                depth: hop.depth,
                service: hop.service,
                attempt: hop.attempt,
                policy: hop.policy,
                cpu_secs: hop.cpu_secs,
                mem_mb: hop.mem_mb,
                megabits: hop.megabits,
                disk_megabits: hop.disk_megabits,
            },
        );
    }

    /// Marks the root failed (lost members at admission or in flight).
    /// The root still waits for its surviving hops before resolving.
    pub fn fail_root(&mut self, root: u64) {
        if let Some(record) = self.roots.get_mut(&root) {
            record.failed = true;
        }
    }

    /// Resolves the root immediately if nothing was admitted for it
    /// (entry arrivals that were fully rejected never get a completion
    /// sweep to resolve them).
    pub fn seal_root(&mut self, root: u64) {
        if self.roots.get(&root).is_some_and(|r| r.pending == 0) {
            self.resolve(root);
        }
    }

    /// Settles one processed [`PendingHop`] of `root`: the queued entry
    /// no longer counts toward `pending` (any admitted shares were
    /// re-counted by [`GraphTracker::register_hop`], and any retried
    /// rejection re-counted itself in
    /// [`GraphTracker::on_unadmitted`]).
    pub fn settle_queued(&mut self, root: u64) {
        let record = self
            .roots
            .get_mut(&root)
            .expect("queued hop for unknown root");
        record.pending -= 1;
        if record.pending == 0 {
            self.resolve(root);
        }
    }

    /// Handles members of a hop the balancer or admission rejected:
    /// either re-queues them as a retry (counting toward `pending`) or
    /// fails the root. The caller still records the queue-abort failure
    /// and settles/seals the originating entry afterwards either way.
    pub fn on_unadmitted(
        &mut self,
        hop: &PendingHop,
        rejected: u64,
        now: SimTime,
        rng: &mut SimRng,
        trace: &mut TraceSink,
        traced: bool,
    ) {
        let template = PendingHop {
            count: rejected,
            ..*hop
        };
        if self.try_retry(template, FailureKind::QueueAbort, now, rng, trace, traced) {
            if let Some(record) = self.roots.get_mut(&hop.root) {
                record.pending += 1;
            }
        } else {
            self.fail_root(hop.root);
        }
    }

    /// Handles one completed batch from the cluster's sweep: journals the
    /// hop's span, queues one child hop per outgoing edge (demands =
    /// child base demands × edge multipliers, count = completed members ×
    /// fan-out), replenishes the service's retry budget, and resolves the
    /// root if this was its last outstanding hop.
    pub fn on_completed(
        &mut self,
        done: &CompletedRequest,
        services: &[ServiceSpec],
        trace: &mut TraceSink,
        traced: bool,
    ) {
        let Some(hop) = self.hops.remove(&done.id.index()) else {
            return;
        };
        let record = self.roots.get_mut(&hop.root).expect("hop without root");
        if traced {
            trace.emit(
                done.finished,
                EventKind::Span {
                    root: hop.root,
                    entry: self.entry_stats[record.entry].service.index(),
                    service: done.service.index(),
                    depth: hop.depth,
                    count: done.count,
                    queue_us: (done.admitted - done.arrival).as_micros(),
                    service_us: (done.finished - done.admitted).as_micros(),
                },
            );
        }
        if done.finished > record.last_finish {
            record.last_finish = done.finished;
        }
        let parent_idx = self.id_to_idx[&done.service.index()];
        if self.resilience.enabled {
            record.work_members += done.count;
            if self.resilience.has_retry_budget() {
                // Token-bucket replenishment: each success earns
                // budget_pct% of a retry token, capped at the floor.
                self.tokens[parent_idx] = (self.tokens[parent_idx]
                    + done.count as f64 * self.resilience.budget_pct / 100.0)
                    .min(self.resilience.budget_floor);
            }
        }
        let mut spawned = 0u32;
        for (edge_idx, edge) in self.graph.edges().iter().enumerate() {
            if edge.parent != parent_idx {
                continue;
            }
            let child = &services[edge.child];
            self.pending.push(PendingHop {
                service: edge.child,
                depth: hop.depth + 1,
                root: hop.root,
                count: done.count * edge.fan_out,
                cpu_secs: child.cpu_secs_per_req * edge.cpu_mult,
                mem_mb: child.mem_per_req.get() * edge.mem_mult,
                megabits: child.megabits_per_req * edge.net_mult,
                disk_megabits: child.disk_megabits_per_req * edge.disk_mult,
                arrival: done.finished,
                attempt: 0,
                policy: (edge_idx + 1) as u32,
            });
            spawned += 1;
        }
        let record = self.roots.get_mut(&hop.root).expect("hop without root");
        record.pending += spawned;
        record.pending -= 1;
        if record.pending == 0 {
            self.resolve(hop.root);
        }
    }

    /// Handles one failed batch: with a retryable failure, attempt cap
    /// not reached, deadline budget left, and budget tokens available,
    /// the batch re-queues as a retry [`PendingHop`] after its backoff;
    /// otherwise the whole root is failed, no children spawn, and the
    /// root resolves once its other hops drain.
    pub fn on_failed(
        &mut self,
        failure: &FailedRequest,
        rng: &mut SimRng,
        trace: &mut TraceSink,
        traced: bool,
    ) {
        let Some(hop) = self.hops.remove(&failure.id.index()) else {
            return;
        };
        let template = PendingHop {
            service: hop.service,
            depth: hop.depth,
            root: hop.root,
            count: failure.count,
            cpu_secs: hop.cpu_secs,
            mem_mb: hop.mem_mb,
            megabits: hop.megabits,
            disk_megabits: hop.disk_megabits,
            arrival: failure.failed_at,
            attempt: hop.attempt,
            policy: hop.policy,
        };
        if self.try_retry(
            template,
            failure.kind,
            failure.failed_at,
            rng,
            trace,
            traced,
        ) {
            // Net pending is unchanged: the in-flight hop record left,
            // the queued retry took its place.
            return;
        }
        let record = self.roots.get_mut(&hop.root).expect("hop without root");
        record.failed = true;
        record.pending -= 1;
        if record.pending == 0 {
            self.resolve(hop.root);
        }
    }

    /// Attempts to re-queue `hop` (whose `count` members just failed
    /// with `kind` at `failed_at`) as a retry. Returns whether the retry
    /// was queued; the caller owns the pending accounting of the failed
    /// attempt either way. The jitter draw happens only on an actually
    /// attempted retry, so disabled runs (and non-retryable failures)
    /// consume no randomness.
    fn try_retry(
        &mut self,
        hop: PendingHop,
        kind: FailureKind,
        failed_at: SimTime,
        rng: &mut SimRng,
        trace: &mut TraceSink,
        traced: bool,
    ) -> bool {
        if !self.resilience.enabled {
            return false;
        }
        let policy = self.policies[hop.policy as usize];
        if !policy.retries(kind) || hop.attempt + 1 >= policy.max_attempts {
            return false;
        }
        let Some(record) = self.roots.get(&hop.root) else {
            return false;
        };
        let service_id = self.service_ids[hop.service];
        let base = policy.backoff_secs(hop.attempt);
        let backoff = if policy.jitter_frac > 0.0 {
            base * (1.0 + policy.jitter_frac * rng.uniform_range(-1.0, 1.0))
        } else {
            base
        };
        let retry_at = failed_at + SimDuration::from_secs(backoff);
        if retry_at >= record.deadline {
            self.stats.deadline_exceeded += 1;
            if traced {
                trace.emit(
                    failed_at,
                    EventKind::DeadlineExceeded {
                        root: hop.root,
                        service: service_id,
                        deadline_us: record.deadline.as_micros(),
                    },
                );
            }
            return false;
        }
        if self.resilience.has_retry_budget() {
            if self.tokens[hop.service] < hop.count as f64 {
                self.stats.budget_exhausted += 1;
                if traced {
                    trace.emit(
                        failed_at,
                        EventKind::BudgetExhausted {
                            root: hop.root,
                            service: service_id,
                            count: hop.count,
                        },
                    );
                }
                return false;
            }
            self.tokens[hop.service] -= hop.count as f64;
        }
        self.stats.retries += 1;
        self.stats.retried_members += hop.count;
        if traced {
            trace.emit(
                failed_at,
                EventKind::Retry {
                    root: hop.root,
                    service: service_id,
                    attempt: hop.attempt + 2,
                    count: hop.count,
                    retry_at_us: retry_at.as_micros(),
                },
            );
        }
        self.pending.push(PendingHop {
            arrival: retry_at,
            attempt: hop.attempt + 1,
            ..hop
        });
        true
    }

    /// Moves the queued child hops out for the driver's admission pass
    /// (in spawn order, which is deterministic). With the resilience
    /// layer disabled every queued hop is due (legacy behaviour); with
    /// it enabled, hops whose arrival — a retry's backoff expiry — lies
    /// beyond `now` stay queued for a later tick, in order.
    pub fn take_due(&mut self, now: SimTime) -> Vec<PendingHop> {
        if !self.resilience.enabled {
            return std::mem::take(&mut self.pending);
        }
        let (due, later): (Vec<PendingHop>, Vec<PendingHop>) = std::mem::take(&mut self.pending)
            .into_iter()
            .partition(|h| h.arrival <= now);
        self.pending = later;
        due
    }

    /// Returns the drained scratch vector for reuse next tick.
    pub fn return_pending_scratch(&mut self, mut scratch: Vec<PendingHop>) {
        if self.pending.is_empty() {
            scratch.clear();
            self.pending = scratch;
        }
    }

    /// Whether any child hops await admission.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Whether the tracker holds no in-flight or queued work at all —
    /// the time-warp fast path must not jump over queued child hops (or
    /// retries still in backoff).
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.hops.is_empty() && self.roots.is_empty()
    }

    fn resolve(&mut self, root: u64) {
        let record = self.roots.remove(&root).expect("resolving unknown root");
        if record.failed {
            self.stats.wasted_members += record.work_members;
        } else {
            self.stats.goodput_members += record.work_members;
        }
        let stats = &mut self.entry_stats[record.entry];
        if record.failed {
            stats.roots_failed += 1;
            stats.members_failed += record.members;
        } else {
            stats.roots_completed += 1;
            stats.members_completed += record.members;
            let secs = (record.last_finish - record.arrival).as_secs();
            for _ in 0..record.members {
                stats.e2e_secs.record(secs);
            }
        }
    }

    /// Consumes the tracker into its per-entry-point report rows.
    pub fn into_entry_stats(self) -> Vec<EntryPointStats> {
        self.entry_stats
    }

    /// Read access for the end-of-run counter dump.
    pub fn entry_stats(&self) -> &[EntryPointStats] {
        &self.entry_stats
    }

    /// Serializes the full tracker state (mirrored by
    /// [`GraphTracker::snapshot_restore`]). The policy table is rebuilt
    /// from config (pinned by the snapshot's config digest), so hops
    /// serialize only their table index.
    pub fn snapshot_write(&self, w: &mut SnapWriter) {
        w.put_u64(self.next_root);
        w.put_usize(self.roots.len());
        for (&id, r) in &self.roots {
            w.put_u64(id);
            w.put_usize(r.entry);
            w.put_u64(r.arrival.as_micros());
            w.put_u64(r.members);
            w.put_u32(r.pending);
            w.put_u8(r.failed as u8);
            w.put_u64(r.last_finish.as_micros());
            w.put_u64(r.deadline.as_micros());
            w.put_u64(r.work_members);
        }
        w.put_usize(self.hops.len());
        for (&id_base, h) in &self.hops {
            w.put_u64(id_base);
            w.put_u64(h.root);
            w.put_u32(h.depth);
            w.put_usize(h.service);
            w.put_u32(h.attempt);
            w.put_u32(h.policy);
            w.put_f64(h.cpu_secs);
            w.put_f64(h.mem_mb);
            w.put_f64(h.megabits);
            w.put_f64(h.disk_megabits);
        }
        w.put_usize(self.pending.len());
        for p in &self.pending {
            w.put_usize(p.service);
            w.put_u32(p.depth);
            w.put_u64(p.root);
            w.put_u64(p.count);
            w.put_f64(p.cpu_secs);
            w.put_f64(p.mem_mb);
            w.put_f64(p.megabits);
            w.put_f64(p.disk_megabits);
            w.put_u64(p.arrival.as_micros());
            w.put_u32(p.attempt);
            w.put_u32(p.policy);
        }
        w.put_usize(self.entry_stats.len());
        for s in &self.entry_stats {
            w.put_u32(s.service.index());
            w.put_u64(s.roots_started);
            w.put_u64(s.roots_completed);
            w.put_u64(s.roots_failed);
            w.put_u64(s.members_completed);
            w.put_u64(s.members_failed);
            let samples = s.e2e_secs.samples();
            w.put_usize(samples.len());
            for &v in samples {
                w.put_f64(v);
            }
            w.put_u64(s.e2e_secs.nan_dropped());
        }
        w.put_usize(self.tokens.len());
        for &t in &self.tokens {
            w.put_f64(t);
        }
        w.put_u64(self.stats.retries);
        w.put_u64(self.stats.retried_members);
        w.put_u64(self.stats.budget_exhausted);
        w.put_u64(self.stats.deadline_exceeded);
        w.put_u64(self.stats.shed_roots);
        w.put_u64(self.stats.shed_members);
        w.put_u64(self.stats.goodput_members);
        w.put_u64(self.stats.wasted_members);
    }

    /// Restores state written by [`GraphTracker::snapshot_write`] into a
    /// freshly built tracker (topology and policies come from the
    /// config, which the snapshot's config digest already pinned).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] when the payload disagrees
    /// with the scenario's entry-point or policy layout.
    pub fn snapshot_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.next_root = r.get_u64()?;
        self.roots.clear();
        for _ in 0..r.get_usize()? {
            let id = r.get_u64()?;
            let entry = r.get_usize()?;
            if entry >= self.entry_stats.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "root {id} references entry slot {entry} of {}",
                    self.entry_stats.len()
                )));
            }
            self.roots.insert(
                id,
                RootRecord {
                    entry,
                    arrival: SimTime::from_micros(r.get_u64()?),
                    members: r.get_u64()?,
                    pending: r.get_u32()?,
                    failed: r.get_u8()? != 0,
                    last_finish: SimTime::from_micros(r.get_u64()?),
                    deadline: SimTime::from_micros(r.get_u64()?),
                    work_members: r.get_u64()?,
                },
            );
        }
        self.hops.clear();
        for _ in 0..r.get_usize()? {
            let id_base = r.get_u64()?;
            let root = r.get_u64()?;
            let depth = r.get_u32()?;
            let service = r.get_usize()?;
            let attempt = r.get_u32()?;
            let policy = r.get_u32()?;
            if service >= self.entry_slot.len() || policy as usize >= self.policies.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "hop {id_base} references service {service} / policy {policy} \
                     outside the scenario"
                )));
            }
            self.hops.insert(
                id_base,
                HopRecord {
                    root,
                    depth,
                    service,
                    attempt,
                    policy,
                    cpu_secs: r.get_f64()?,
                    mem_mb: r.get_f64()?,
                    megabits: r.get_f64()?,
                    disk_megabits: r.get_f64()?,
                },
            );
        }
        self.pending.clear();
        for _ in 0..r.get_usize()? {
            let service = r.get_usize()?;
            if service >= self.entry_slot.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "pending hop references service index {service} of {}",
                    self.entry_slot.len()
                )));
            }
            let hop = PendingHop {
                service,
                depth: r.get_u32()?,
                root: r.get_u64()?,
                count: r.get_u64()?,
                cpu_secs: r.get_f64()?,
                mem_mb: r.get_f64()?,
                megabits: r.get_f64()?,
                disk_megabits: r.get_f64()?,
                arrival: SimTime::from_micros(r.get_u64()?),
                attempt: r.get_u32()?,
                policy: r.get_u32()?,
            };
            if hop.policy as usize >= self.policies.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "pending hop references policy {} of {}",
                    hop.policy,
                    self.policies.len()
                )));
            }
            self.pending.push(hop);
        }
        let n = r.get_usize()?;
        if n != self.entry_stats.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot carries {n} entry points, scenario has {}",
                self.entry_stats.len()
            )));
        }
        for s in self.entry_stats.iter_mut() {
            let svc = r.get_u32()?;
            if svc != s.service.index() {
                return Err(SnapshotError::Corrupt(format!(
                    "entry point order mismatch: snapshot {svc}, scenario {}",
                    s.service.index()
                )));
            }
            s.roots_started = r.get_u64()?;
            s.roots_completed = r.get_u64()?;
            s.roots_failed = r.get_u64()?;
            s.members_completed = r.get_u64()?;
            s.members_failed = r.get_u64()?;
            s.e2e_secs = Summary::new();
            for _ in 0..r.get_usize()? {
                s.e2e_secs.record(r.get_f64()?);
            }
            for _ in 0..r.get_u64()? {
                s.e2e_secs.record(f64::NAN);
            }
        }
        let n = r.get_usize()?;
        if n != self.tokens.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot carries {n} budget buckets, scenario has {}",
                self.tokens.len()
            )));
        }
        for t in self.tokens.iter_mut() {
            *t = r.get_f64()?;
        }
        self.stats = ResilienceStats {
            retries: r.get_u64()?,
            retried_members: r.get_u64()?,
            budget_exhausted: r.get_u64()?,
            deadline_exceeded: r.get_u64()?,
            shed_roots: r.get_u64()?,
            shed_members: r.get_u64()?,
            goodput_members: r.get_u64()?,
            wasted_members: r.get_u64()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_cluster::{ContainerId, FailureKind, RequestId};
    use hyscale_workload::{LoadPattern, ServiceProfile};

    fn services(n: u32) -> Vec<ServiceSpec> {
        (0..n)
            .map(|i| ServiceSpec::synthetic(i, ServiceProfile::CpuBound, LoadPattern::low_burst()))
            .collect()
    }

    fn tracker(graph: ServiceGraph, specs: &[ServiceSpec]) -> GraphTracker {
        GraphTracker::new(graph, specs, ResilienceConfig::disabled())
    }

    fn entry_hop(root: u64, service: usize) -> PendingHop {
        PendingHop {
            service,
            depth: 0,
            root,
            count: 1,
            cpu_secs: 0.1,
            mem_mb: 1.0,
            megabits: 0.1,
            disk_megabits: 0.0,
            arrival: SimTime::ZERO,
            attempt: 0,
            policy: 0,
        }
    }

    fn completed(id: u64, service: u32, count: u64, finished_secs: f64) -> CompletedRequest {
        let finished = SimTime::from_secs(finished_secs);
        CompletedRequest {
            id: RequestId::new(id),
            count,
            service: ServiceId::new(service),
            container: ContainerId::new(0),
            arrival: SimTime::ZERO,
            admitted: SimTime::from_secs(0.1),
            finished,
            response_time: finished - SimTime::ZERO,
        }
    }

    fn failed(id: u64, service: u32, count: u64, at_secs: f64, kind: FailureKind) -> FailedRequest {
        FailedRequest {
            id: RequestId::new(id),
            count,
            service: ServiceId::new(service),
            container: Some(ContainerId::new(0)),
            arrival: SimTime::ZERO,
            failed_at: SimTime::from_secs(at_secs),
            kind,
        }
    }

    #[test]
    fn three_tier_root_resolves_with_e2e_latency() {
        let specs = services(3);
        let graph = ServiceGraph::new(3).with_edge(0, 1, 2).with_edge(1, 2, 1);
        let mut t = tracker(graph, &specs);
        assert!(t.is_entry(0));
        assert!(!t.is_entry(1));

        let root = t.begin_root(0, SimTime::ZERO, 5);
        t.register_hop(root, 100, &entry_hop(root, 0));
        t.seal_root(root);
        assert!(!t.is_idle());

        let mut sink = TraceSink::disabled();
        t.on_completed(&completed(100, 0, 5, 1.0), &specs, &mut sink, false);
        // The entry hop spawned one pending child (service 1, 5×2
        // members); the root is still open.
        assert!(t.has_pending());
        let pending = t.take_due(SimTime::from_secs(100.0));
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].service, 1);
        assert_eq!(pending[0].count, 10);
        assert_eq!(pending[0].depth, 1);
        assert_eq!(pending[0].attempt, 0);
        assert_eq!(pending[0].policy, 1, "first edge's policy slot");

        t.register_hop(root, 200, &pending[0]);
        t.settle_queued(root);
        t.on_completed(&completed(200, 1, 10, 2.0), &specs, &mut sink, false);
        let pending = t.take_due(SimTime::from_secs(100.0));
        assert_eq!(pending[0].service, 2);
        t.register_hop(root, 300, &pending[0]);
        t.settle_queued(root);
        t.on_completed(&completed(300, 2, 10, 3.5), &specs, &mut sink, false);

        assert!(t.is_idle());
        let stats = t.into_entry_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].roots_completed, 1);
        assert_eq!(stats[0].members_completed, 5);
        assert_eq!(stats[0].e2e_secs.count(), 5);
        assert!((stats[0].e2e_secs.max() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn any_failed_hop_fails_the_whole_root() {
        let specs = services(2);
        let graph = ServiceGraph::new(2).with_edge(0, 1, 1);
        let mut t = tracker(graph, &specs);
        let root = t.begin_root(0, SimTime::ZERO, 3);
        t.register_hop(root, 10, &entry_hop(root, 0));
        t.seal_root(root);
        let mut sink = TraceSink::disabled();
        let mut rng = SimRng::seed_from(1);
        t.on_completed(&completed(10, 0, 3, 1.0), &specs, &mut sink, false);
        let pending = t.take_due(SimTime::from_secs(100.0));
        t.register_hop(root, 20, &pending[0]);
        t.settle_queued(root);
        t.on_failed(
            &failed(20, 1, 3, 2.0, FailureKind::Timeout),
            &mut rng,
            &mut sink,
            false,
        );
        assert!(t.is_idle());
        let stats = t.into_entry_stats();
        assert_eq!(stats[0].roots_failed, 1);
        assert_eq!(stats[0].members_failed, 3);
        assert_eq!(stats[0].roots_completed, 0);
        assert!(stats[0].e2e_secs.is_empty());
    }

    #[test]
    fn fully_rejected_entry_resolves_as_failed_on_seal() {
        let specs = services(1);
        let mut t = tracker(ServiceGraph::new(1), &specs);
        let root = t.begin_root(0, SimTime::ZERO, 4);
        t.fail_root(root);
        t.seal_root(root);
        assert!(t.is_idle());
        let stats = t.into_entry_stats();
        assert_eq!(stats[0].roots_started, 1);
        assert_eq!(stats[0].roots_failed, 1);
        assert_eq!(stats[0].members_failed, 4);
    }

    #[test]
    fn edge_multipliers_scale_child_demands() {
        let specs = services(2);
        let graph = ServiceGraph::new(2).with_edge_spec(
            hyscale_workload::GraphEdge::new(0, 1, 3)
                .with_costs(2.0, 0.5)
                .with_mem_disk(4.0, 8.0),
        );
        let mut t = tracker(graph, &specs);
        let root = t.begin_root(0, SimTime::ZERO, 1);
        t.register_hop(root, 1, &entry_hop(root, 0));
        let mut sink = TraceSink::disabled();
        t.on_completed(&completed(1, 0, 1, 1.0), &specs, &mut sink, false);
        let pending = t.take_due(SimTime::from_secs(100.0));
        let child = &specs[1];
        assert_eq!(pending[0].count, 3);
        assert!((pending[0].cpu_secs - child.cpu_secs_per_req * 2.0).abs() < 1e-12);
        assert!((pending[0].megabits - child.megabits_per_req * 0.5).abs() < 1e-12);
        assert!((pending[0].mem_mb - child.mem_per_req.get() * 4.0).abs() < 1e-12);
        assert!((pending[0].disk_megabits - child.disk_megabits_per_req * 8.0).abs() < 1e-12);
    }

    #[test]
    fn retryable_failure_requeues_instead_of_failing() {
        let specs = services(2);
        let graph = ServiceGraph::new(2).with_edge(0, 1, 1);
        let resilience =
            ResilienceConfig::with_policy(RetryPolicy::standard().with_backoff(1.0, 8.0, 0.0));
        let mut t = GraphTracker::new(graph, &specs, resilience);
        let mut sink = TraceSink::disabled();
        let mut rng = SimRng::seed_from(7);

        let root = t.begin_root(0, SimTime::ZERO, 2);
        t.register_hop(root, 10, &entry_hop(root, 0));
        t.seal_root(root);
        t.on_completed(&completed(10, 0, 2, 1.0), &specs, &mut sink, false);
        let pending = t.take_due(SimTime::from_secs(100.0));
        t.register_hop(root, 20, &pending[0]);
        t.settle_queued(root);

        // The child hop dies to an infra death: retryable.
        t.on_failed(
            &failed(20, 1, 2, 2.0, FailureKind::InfraDeath),
            &mut rng,
            &mut sink,
            false,
        );
        assert!(!t.is_idle(), "root must stay open for the retry");
        assert_eq!(t.resilience_stats().retries, 1);
        assert_eq!(t.resilience_stats().retried_members, 2);

        // Nothing is due before the backoff expires (base 1.0 s).
        assert!(t.take_due(SimTime::from_secs(2.5)).is_empty());
        let due = t.take_due(SimTime::from_secs(3.0));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].attempt, 1);
        assert_eq!(due[0].count, 2);
        assert_eq!(due[0].arrival, SimTime::from_secs(3.0));

        // The retry succeeds; the root completes cleanly.
        t.register_hop(root, 30, &due[0]);
        t.settle_queued(root);
        t.on_completed(&completed(30, 1, 2, 4.0), &specs, &mut sink, false);
        assert!(t.is_idle());
        assert_eq!(t.resilience_stats().goodput_members, 4);
        assert_eq!(t.resilience_stats().wasted_members, 0);
        let stats = t.into_entry_stats();
        assert_eq!(stats[0].roots_completed, 1);
        assert_eq!(stats[0].roots_failed, 0);
    }

    #[test]
    fn attempt_cap_exhausts_into_root_failure() {
        let specs = services(2);
        let graph = ServiceGraph::new(2).with_edge(0, 1, 1);
        let resilience = ResilienceConfig::with_policy(
            RetryPolicy::standard()
                .with_max_attempts(2)
                .with_backoff(1.0, 8.0, 0.0),
        );
        let mut t = GraphTracker::new(graph, &specs, resilience);
        let mut sink = TraceSink::disabled();
        let mut rng = SimRng::seed_from(7);

        let root = t.begin_root(0, SimTime::ZERO, 1);
        t.register_hop(root, 10, &entry_hop(root, 0));
        t.seal_root(root);
        t.on_completed(&completed(10, 0, 1, 1.0), &specs, &mut sink, false);
        let pending = t.take_due(SimTime::from_secs(100.0));
        t.register_hop(root, 20, &pending[0]);
        t.settle_queued(root);
        t.on_failed(
            &failed(20, 1, 1, 2.0, FailureKind::InfraDeath),
            &mut rng,
            &mut sink,
            false,
        );
        let due = t.take_due(SimTime::from_secs(10.0));
        assert_eq!(due[0].attempt, 1);
        t.register_hop(root, 30, &due[0]);
        t.settle_queued(root);
        // Second failure: attempts (2) are spent, root fails.
        t.on_failed(
            &failed(30, 1, 1, 4.0, FailureKind::InfraDeath),
            &mut rng,
            &mut sink,
            false,
        );
        assert!(t.is_idle());
        assert_eq!(t.resilience_stats().retries, 1);
        assert_eq!(t.resilience_stats().wasted_members, 1);
        let stats = t.into_entry_stats();
        assert_eq!(stats[0].roots_failed, 1);
    }

    #[test]
    fn empty_budget_bucket_blocks_the_retry() {
        let specs = services(2);
        let graph = ServiceGraph::new(2).with_edge(0, 1, 1);
        let resilience =
            ResilienceConfig::with_policy(RetryPolicy::standard().with_backoff(1.0, 8.0, 0.0))
                .with_budget(10.0, 2.0);
        let mut t = GraphTracker::new(graph, &specs, resilience);
        let mut sink = TraceSink::disabled();
        let mut rng = SimRng::seed_from(7);

        let root = t.begin_root(0, SimTime::ZERO, 4);
        t.register_hop(root, 10, &entry_hop(root, 0));
        t.seal_root(root);
        t.on_completed(&completed(10, 0, 4, 1.0), &specs, &mut sink, false);
        let pending = t.take_due(SimTime::from_secs(100.0));
        t.register_hop(root, 20, &pending[0]);
        t.settle_queued(root);
        // 4 members want a retry but the floor only holds 2 tokens
        // (plus the 4×10% earned by the entry completion, still < 4).
        t.on_failed(
            &failed(20, 1, 4, 2.0, FailureKind::InfraDeath),
            &mut rng,
            &mut sink,
            false,
        );
        assert!(t.is_idle(), "budget-refused retry fails the root");
        assert_eq!(t.resilience_stats().budget_exhausted, 1);
        assert_eq!(t.resilience_stats().retries, 0);
        let stats = t.into_entry_stats();
        assert_eq!(stats[0].roots_failed, 1);
    }

    #[test]
    fn backoff_past_deadline_fails_the_root() {
        let specs = services(2);
        let graph = ServiceGraph::new(2).with_edge(0, 1, 1);
        let resilience =
            ResilienceConfig::with_policy(RetryPolicy::standard().with_backoff(5.0, 8.0, 0.0))
                .with_root_budget_secs(6.0);
        let mut t = GraphTracker::new(graph, &specs, resilience);
        let mut sink = TraceSink::disabled();
        let mut rng = SimRng::seed_from(7);

        let root = t.begin_root(0, SimTime::ZERO, 1);
        // Deadline budget also caps hop timeouts.
        assert_eq!(
            t.hop_timeout(root, SimTime::from_secs(2.0), SimDuration::from_secs(30.0)),
            SimDuration::from_secs(4.0)
        );
        t.register_hop(root, 10, &entry_hop(root, 0));
        t.seal_root(root);
        t.on_completed(&completed(10, 0, 1, 2.0), &specs, &mut sink, false);
        let pending = t.take_due(SimTime::from_secs(100.0));
        t.register_hop(root, 20, &pending[0]);
        t.settle_queued(root);
        // Fails at t=3; backoff of 5 s lands at t=8 > deadline t=6.
        t.on_failed(
            &failed(20, 1, 1, 3.0, FailureKind::InfraDeath),
            &mut rng,
            &mut sink,
            false,
        );
        assert!(t.is_idle());
        assert_eq!(t.resilience_stats().deadline_exceeded, 1);
        assert_eq!(t.resilience_stats().retries, 0);
        let stats = t.into_entry_stats();
        assert_eq!(stats[0].roots_failed, 1);
    }

    #[test]
    fn unadmitted_members_retry_and_keep_the_root_pending() {
        let specs = services(1);
        let resilience =
            ResilienceConfig::with_policy(RetryPolicy::standard().with_backoff(1.0, 8.0, 0.0));
        let mut t = GraphTracker::new(ServiceGraph::new(1), &specs, resilience);
        let mut sink = TraceSink::disabled();
        let mut rng = SimRng::seed_from(7);

        let root = t.begin_root(0, SimTime::ZERO, 3);
        let hop = entry_hop(root, 0);
        // The whole admission was rejected: retry instead of fail.
        t.on_unadmitted(&hop, 3, SimTime::ZERO, &mut rng, &mut sink, false);
        t.seal_root(root);
        assert!(!t.is_idle(), "retry keeps the root open past seal");
        let due = t.take_due(SimTime::from_secs(1.0));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].attempt, 1);
        assert_eq!(due[0].count, 3);
        t.register_hop(root, 40, &due[0]);
        t.settle_queued(root);
        t.on_completed(&completed(40, 0, 3, 2.0), &specs, &mut sink, false);
        assert!(t.is_idle());
        let stats = t.into_entry_stats();
        assert_eq!(stats[0].roots_completed, 1);
        assert_eq!(stats[0].roots_failed, 0);
    }

    #[test]
    fn jitter_draws_only_on_actual_retries() {
        let specs = services(2);
        let graph = ServiceGraph::new(2).with_edge(0, 1, 1);
        // Disabled layer: the RNG must never be touched.
        let mut t = tracker(graph.clone(), &specs);
        let mut sink = TraceSink::disabled();
        let mut rng = SimRng::seed_from(99);
        let before = rng.state();
        let root = t.begin_root(0, SimTime::ZERO, 1);
        t.register_hop(root, 10, &entry_hop(root, 0));
        t.seal_root(root);
        t.on_failed(
            &failed(10, 0, 1, 1.0, FailureKind::InfraDeath),
            &mut rng,
            &mut sink,
            false,
        );
        assert_eq!(rng.state(), before, "disabled layer must not draw");

        // Enabled with jitter: exactly one draw per retry.
        let resilience =
            ResilienceConfig::with_policy(RetryPolicy::standard().with_backoff(1.0, 8.0, 0.5));
        let mut t = GraphTracker::new(graph, &specs, resilience);
        let mut rng = SimRng::seed_from(99);
        let root = t.begin_root(0, SimTime::ZERO, 1);
        t.register_hop(root, 10, &entry_hop(root, 0));
        t.seal_root(root);
        let before = rng.state();
        t.on_failed(
            &failed(10, 0, 1, 1.0, FailureKind::InfraDeath),
            &mut rng,
            &mut sink,
            false,
        );
        assert_ne!(rng.state(), before, "jittered retry must draw once");
        assert_eq!(t.resilience_stats().retries, 1);
    }

    #[test]
    fn per_edge_policy_overrides_the_default() {
        let specs = services(2);
        let graph = ServiceGraph::new(2).with_edge_spec(
            hyscale_workload::GraphEdge::new(0, 1, 1).with_retry(RetryPolicy::off()),
        );
        // Default would retry, but the edge override says no.
        let resilience =
            ResilienceConfig::with_policy(RetryPolicy::standard().with_backoff(1.0, 8.0, 0.0));
        let mut t = GraphTracker::new(graph, &specs, resilience);
        let mut sink = TraceSink::disabled();
        let mut rng = SimRng::seed_from(7);
        let root = t.begin_root(0, SimTime::ZERO, 1);
        t.register_hop(root, 10, &entry_hop(root, 0));
        t.seal_root(root);
        t.on_completed(&completed(10, 0, 1, 1.0), &specs, &mut sink, false);
        let pending = t.take_due(SimTime::from_secs(100.0));
        assert_eq!(pending[0].policy, 1);
        t.register_hop(root, 20, &pending[0]);
        t.settle_queued(root);
        t.on_failed(
            &failed(20, 1, 1, 2.0, FailureKind::InfraDeath),
            &mut rng,
            &mut sink,
            false,
        );
        assert!(t.is_idle(), "edge-off policy must not retry");
        assert_eq!(t.resilience_stats().retries, 0);
    }

    #[test]
    fn snapshot_round_trips_mid_flight_state() {
        let specs = services(3);
        let graph = ServiceGraph::new(3).with_edge(0, 1, 2).with_edge(0, 2, 1);
        let mut t = tracker(graph.clone(), &specs);
        let root = t.begin_root(0, SimTime::from_secs(1.0), 2);
        t.register_hop(root, 50, &entry_hop(root, 0));
        let mut sink = TraceSink::disabled();
        let mut rng = SimRng::seed_from(1);
        t.on_completed(&completed(50, 0, 2, 2.0), &specs, &mut sink, false);
        // Two pending children, root open. Also one fully resolved root.
        let done_root = t.begin_root(0, SimTime::ZERO, 1);
        t.register_hop(done_root, 60, &entry_hop(done_root, 0));
        // Complete it on a childless path by failing it instead.
        t.fail_root(done_root);
        t.on_failed(
            &failed(60, 0, 1, 1.0, FailureKind::Removal),
            &mut rng,
            &mut sink,
            false,
        );

        let mut w = SnapWriter::new();
        t.snapshot_write(&mut w);
        let first = w.finish();

        let mut restored = tracker(graph, &specs);
        let mut r = SnapReader::open(&first).unwrap();
        restored.snapshot_restore(&mut r).unwrap();
        r.expect_done().unwrap();

        let mut w2 = SnapWriter::new();
        restored.snapshot_write(&mut w2);
        assert_eq!(first, w2.finish(), "restore must be bit-exact");
        assert!(restored.has_pending());
        assert_eq!(restored.entry_stats()[0].roots_failed, 1);
    }

    #[test]
    fn snapshot_round_trips_resilience_state() {
        let specs = services(2);
        let graph = ServiceGraph::new(2).with_edge(0, 1, 1);
        let resilience =
            ResilienceConfig::with_policy(RetryPolicy::standard().with_backoff(1.0, 8.0, 0.0))
                .with_budget(10.0, 50.0)
                .with_root_budget_secs(60.0)
                .with_shed_watermark(100);
        let mut t = GraphTracker::new(graph.clone(), &specs, resilience);
        let mut sink = TraceSink::disabled();
        let mut rng = SimRng::seed_from(7);

        let root = t.begin_root(0, SimTime::ZERO, 2);
        t.register_hop(root, 10, &entry_hop(root, 0));
        t.seal_root(root);
        t.on_completed(&completed(10, 0, 2, 1.0), &specs, &mut sink, false);
        let pending = t.take_due(SimTime::from_secs(100.0));
        t.register_hop(root, 20, &pending[0]);
        t.settle_queued(root);
        // Mid-backoff: a retry is queued with a future arrival.
        t.on_failed(
            &failed(20, 1, 2, 2.0, FailureKind::InfraDeath),
            &mut rng,
            &mut sink,
            false,
        );
        t.record_shed(0, 5, 200, SimTime::from_secs(2.0), &mut sink, false);
        assert!(t.has_pending());
        assert_eq!(t.resilience_stats().retries, 1);
        assert_eq!(t.resilience_stats().shed_roots, 1);

        let mut w = SnapWriter::new();
        t.snapshot_write(&mut w);
        let first = w.finish();

        let mut restored = GraphTracker::new(graph, &specs, resilience);
        let mut r = SnapReader::open(&first).unwrap();
        restored.snapshot_restore(&mut r).unwrap();
        r.expect_done().unwrap();

        let mut w2 = SnapWriter::new();
        restored.snapshot_write(&mut w2);
        assert_eq!(first, w2.finish(), "restore must be bit-exact");
        assert_eq!(restored.resilience_stats(), t.resilience_stats());
        assert_eq!(restored.tokens, t.tokens);
        // The mid-backoff retry survives with its attempt counter.
        let due = restored.take_due(SimTime::from_secs(10.0));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].attempt, 1);
    }
}
