//! The Kubernetes horizontal pod autoscaler baseline (paper Sec. IV-A.1).
//!
//! The control law, as the paper states it:
//!
//! ```text
//! utilization_r = usage_r / requested_r
//! NumReplicas_m = ceil( Σ_r utilization_r / Target_m )
//! ```
//!
//! with two anti-thrashing mechanisms: rescaling happens only if
//! `|avg(utilization)/Target − 1| > 0.1`, and minimum scale-up /
//! scale-down intervals (3 s / 50 s in the paper's experiments) halt
//! further rescaling after an operation.

use hyscale_cluster::{Cores, MemMb, NodeId};
use hyscale_sim::SimDuration;
use hyscale_trace::{EventKind, Metric, TraceSink, Verdict};

use crate::actions::ScalingAction;
use crate::algorithms::{Autoscaler, PlacementPolicy, RescaleGate};
use crate::view::{ClusterView, ReplicaView, ServiceView};

/// Parameters of the horizontal autoscalers (Kubernetes and Network).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HpaConfig {
    /// Target utilization as a fraction of the request (0.5 = 50%).
    pub target: f64,
    /// Tolerance band around the target inside which no rescaling
    /// happens (the paper's 0.1).
    pub tolerance: f64,
    /// Lower bound on replicas per service.
    pub min_replicas: usize,
    /// Upper bound on replicas per service.
    pub max_replicas: usize,
    /// Minimum interval after a scale-up before any further rescaling.
    pub scale_up_interval: SimDuration,
    /// Minimum interval after a scale-down before any further rescaling.
    pub scale_down_interval: SimDuration,
    /// Node-selection policy for new replicas.
    pub placement: PlacementPolicy,
}

impl Default for HpaConfig {
    fn default() -> Self {
        HpaConfig {
            target: 0.5,
            tolerance: 0.1,
            min_replicas: 1,
            max_replicas: 16,
            scale_up_interval: SimDuration::from_secs(3.0),
            scale_down_interval: SimDuration::from_secs(50.0),
            placement: PlacementPolicy::Spread,
        }
    }
}

impl HpaConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.target > 0.0 && self.target.is_finite()) {
            return Err(format!("target must be positive, got {}", self.target));
        }
        if !(0.0..1.0).contains(&self.tolerance) {
            return Err(format!(
                "tolerance must be in [0,1), got {}",
                self.tolerance
            ));
        }
        if self.min_replicas == 0 {
            return Err("min_replicas must be at least 1".to_string());
        }
        if self.max_replicas < self.min_replicas {
            return Err("max_replicas must be >= min_replicas".to_string());
        }
        Ok(())
    }
}

/// Which per-replica utilization signal an HPA instance scales on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HpaMetric {
    Cpu,
    Network,
}

impl HpaMetric {
    fn utilization(self, replica: &ReplicaView) -> f64 {
        match self {
            HpaMetric::Cpu => replica.cpu_utilization(),
            HpaMetric::Network => replica.net_utilization(),
        }
    }
}

/// Google's Kubernetes horizontal autoscaling algorithm on CPU
/// utilization — the paper's baseline.
#[derive(Debug)]
pub struct KubernetesHpa {
    config: HpaConfig,
    gate: RescaleGate,
    metric: HpaMetric,
    name: &'static str,
}

impl KubernetesHpa {
    /// Creates the baseline with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`HpaConfig::validate`]).
    pub fn new(config: HpaConfig) -> Self {
        Self::with_metric(config, HpaMetric::Cpu, "kubernetes")
    }

    pub(crate) fn with_metric(config: HpaConfig, metric: HpaMetric, name: &'static str) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid HpaConfig: {e}");
        }
        KubernetesHpa {
            gate: RescaleGate::new(config.scale_up_interval, config.scale_down_interval),
            config,
            metric,
            name,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HpaConfig {
        &self.config
    }

    fn decide_service(
        &mut self,
        view: &ClusterView,
        service: &ServiceView,
        trace: &mut TraceSink,
    ) -> Vec<ScalingAction> {
        let (name, target, svc, now) = (self.name, self.config.target, service.service, view.now);
        let trace_metric = match self.metric {
            HpaMetric::Cpu => Metric::Cpu,
            HpaMetric::Network => Metric::Net,
        };
        let evaluation = move |trace: &mut TraceSink, value: f64, verdict: Verdict| {
            trace.emit(
                now,
                EventKind::Evaluation {
                    algorithm: name,
                    service: svc.index(),
                    metric: trace_metric,
                    value,
                    target,
                    verdict,
                },
            );
        };

        let mut actions = Vec::new();
        let current = service.replica_count();
        if current == 0 {
            // Nothing to measure; restore the minimum replica count.
            evaluation(trace, 0.0, Verdict::ScaleUp);
            return self.spawn_n(view, service, self.config.min_replicas, &mut Vec::new());
        }

        let ready: Vec<&ReplicaView> = service.replicas.iter().filter(|r| r.ready).collect();
        if ready.is_empty() {
            return actions; // replicas still starting; wait.
        }
        let utilizations: Vec<f64> = ready.iter().map(|r| self.metric.utilization(r)).collect();
        let sum_util: f64 = utilizations.iter().sum();
        let avg_util = sum_util / utilizations.len() as f64;

        // Tolerance band: |avg/target − 1| must exceed 0.1 to act.
        if (avg_util / self.config.target - 1.0).abs() <= self.config.tolerance {
            evaluation(trace, avg_util, Verdict::Hold);
            return actions;
        }

        let desired = ((sum_util / self.config.target).ceil() as usize)
            .clamp(self.config.min_replicas, self.config.max_replicas);

        if desired > current {
            if !self.gate.allows(service.service, view.now) {
                evaluation(trace, avg_util, Verdict::Gated);
                return actions;
            }
            evaluation(trace, avg_util, Verdict::ScaleUp);
            let mut spawned = Vec::new();
            actions.extend(self.spawn_n(view, service, desired - current, &mut spawned));
            if !actions.is_empty() {
                self.gate.record_up(service.service, view.now);
            }
        } else if desired < current {
            if !self.gate.allows(service.service, view.now) {
                evaluation(trace, avg_util, Verdict::Gated);
                return actions;
            }
            evaluation(trace, avg_util, Verdict::ScaleDown);
            // Scale in: remove the replicas with the fewest requests in
            // flight (least disruption; Kubernetes picks arbitrarily).
            let mut by_load: Vec<&ReplicaView> = service.replicas.iter().collect();
            by_load.sort_by_key(|r| (r.in_flight, r.container));
            for replica in by_load.into_iter().take(current - desired) {
                actions.push(ScalingAction::Remove {
                    container: replica.container,
                });
            }
            if !actions.is_empty() {
                self.gate.record_down(service.service, view.now);
            }
        } else {
            evaluation(trace, avg_util, Verdict::Hold);
        }
        actions
    }

    /// Plans `n` spawns on the nodes with the most free CPU (Kubernetes'
    /// spreading scheduler, approximately). Updates `spawned` with chosen
    /// nodes so repeated calls see depleted capacity.
    fn spawn_n(
        &self,
        view: &ClusterView,
        service: &ServiceView,
        n: usize,
        spawned: &mut Vec<NodeId>,
    ) -> Vec<ScalingAction> {
        let mut actions = Vec::new();
        let mut free: Vec<(NodeId, Cores, MemMb)> = view
            .nodes
            .iter()
            .map(|nv| (nv.node, nv.free_cpu, nv.free_mem))
            .collect();
        for _ in 0..n {
            // Order candidates by the configured placement policy
            // (spread by default, as Kubernetes' scheduler does).
            let placement = self.config.placement;
            free.sort_by(|a, b| placement.prefer(a.1.get(), a.0.index(), b.1.get(), b.0.index()));
            let Some(slot) = free.iter_mut().find(|(_, cpu, mem)| {
                cpu.get() >= service.template_cpu.get() && mem.get() >= service.template_mem.get()
            }) else {
                break; // cluster full
            };
            slot.1 -= service.template_cpu;
            slot.2 -= service.template_mem;
            spawned.push(slot.0);
            actions.push(ScalingAction::Spawn {
                service: service.service,
                node: slot.0,
                cpu: service.template_cpu,
                mem: service.template_mem,
            });
        }
        actions
    }
}

impl Autoscaler for KubernetesHpa {
    fn name(&self) -> &'static str {
        self.name
    }

    fn decide(&mut self, view: &ClusterView) -> Vec<ScalingAction> {
        self.decide_traced(view, &mut TraceSink::disabled())
    }

    fn decide_traced(&mut self, view: &ClusterView, trace: &mut TraceSink) -> Vec<ScalingAction> {
        let mut actions = Vec::new();
        for service in &view.services {
            actions.extend(self.decide_service(view, service, trace));
        }
        actions
    }

    fn gate_entries(&self) -> Vec<(u32, u64)> {
        self.gate.entries()
    }

    fn restore_gate(&mut self, entries: &[(u32, u64)]) {
        self.gate.restore_entries(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::test_support::{node, replica, view_of};
    use hyscale_sim::SimTime;

    fn hpa() -> KubernetesHpa {
        KubernetesHpa::new(HpaConfig::default())
    }

    #[test]
    fn at_target_no_action() {
        // One replica at exactly 50% utilization of its request.
        let view = view_of(
            0,
            vec![replica(0, 0, 0.25, 0.5)],
            vec![node(1, 4.0, 8192.0, vec![])],
        );
        assert!(hpa().decide(&view).is_empty());
    }

    #[test]
    fn inside_tolerance_band_no_action() {
        // avg util 0.54/target 0.5 => ratio 1.08, inside ±0.1.
        let view = view_of(
            0,
            vec![replica(0, 0, 0.27, 0.5)],
            vec![node(1, 4.0, 8192.0, vec![])],
        );
        assert!(hpa().decide(&view).is_empty());
    }

    #[test]
    fn overload_scales_up_by_ceil_rule() {
        // util = 1.6 => desired = ceil(1.6/0.5) = 4 replicas, currently 1.
        let view = view_of(
            0,
            vec![replica(0, 0, 0.8, 0.5)],
            vec![node(1, 4.0, 8192.0, vec![]), node(2, 4.0, 8192.0, vec![])],
        );
        let actions = hpa().decide(&view);
        assert_eq!(actions.len(), 3);
        assert!(actions
            .iter()
            .all(|a| matches!(a, ScalingAction::Spawn { .. })));
    }

    #[test]
    fn spawns_spread_across_nodes() {
        let view = view_of(
            0,
            vec![replica(0, 0, 0.8, 0.5)],
            vec![node(1, 1.0, 8192.0, vec![]), node(2, 1.0, 8192.0, vec![])],
        );
        let actions = hpa().decide(&view);
        let nodes: Vec<NodeId> = actions
            .iter()
            .filter_map(|a| match a {
                ScalingAction::Spawn { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        assert!(nodes.contains(&NodeId::new(1)) && nodes.contains(&NodeId::new(2)));
    }

    #[test]
    fn underload_scales_down_to_desired() {
        // Three replicas each at 10% utilization: sum util 0.3,
        // desired = ceil(0.3/0.5) = 1.
        let view = view_of(
            0,
            vec![
                replica(0, 0, 0.05, 0.5),
                replica(1, 1, 0.05, 0.5),
                replica(2, 2, 0.05, 0.5),
            ],
            vec![],
        );
        let actions = hpa().decide(&view);
        assert_eq!(actions.len(), 2);
        assert!(actions
            .iter()
            .all(|a| matches!(a, ScalingAction::Remove { .. })));
    }

    #[test]
    fn never_scales_below_min_replicas() {
        let view = view_of(0, vec![replica(0, 0, 0.0, 0.5)], vec![]);
        let actions = hpa().decide(&view);
        assert!(actions.is_empty(), "single replica at min must stay");
    }

    #[test]
    fn clamps_to_max_replicas() {
        let config = HpaConfig {
            max_replicas: 2,
            ..HpaConfig::default()
        };
        let view = view_of(
            0,
            vec![replica(0, 0, 5.0, 0.5)], // wildly overloaded
            vec![node(1, 64.0, 65536.0, vec![])],
        );
        let actions = KubernetesHpa::new(config).decide(&view);
        assert_eq!(actions.len(), 1, "desired clamps to max=2, so one spawn");
    }

    #[test]
    fn rescale_interval_blocks_consecutive_operations() {
        let mut algo = hpa();
        let overloaded = view_of(
            0,
            vec![replica(0, 0, 0.8, 0.5)],
            vec![node(1, 16.0, 65536.0, vec![])],
        );
        assert!(!algo.decide(&overloaded).is_empty());
        // Immediately after, the gate (3 s) blocks further ups at the same
        // timestamp.
        assert!(algo.decide(&overloaded).is_empty());
        // After 5 s (view.now is 100 s; build a later view) it acts again.
        let mut later = overloaded.clone();
        later.now = SimTime::from_secs(104.0);
        assert!(!algo.decide(&later).is_empty());
    }

    #[test]
    fn starting_replicas_are_counted_but_not_measured() {
        // One ready replica overloaded + one starting replica: desired is
        // computed from the ready one (util 0.8/0.5 -> 2 replicas) and
        // current = 2 already, so nothing happens.
        let mut starting = replica(1, 1, 0.0, 0.5);
        starting.ready = false;
        let view = view_of(
            0,
            vec![replica(0, 0, 0.4, 0.5), starting],
            vec![node(2, 4.0, 8192.0, vec![])],
        );
        // sum util over ready = 0.8 => desired 2 == current 2.
        // avg util = 0.8, ratio 1.6 > 1.1 so tolerance passes, but desired
        // equals current so no action.
        assert!(hpa().decide(&view).is_empty());
    }

    #[test]
    fn does_not_spawn_when_cluster_full() {
        let view = view_of(
            0,
            vec![replica(0, 0, 0.8, 0.5)],
            vec![node(1, 0.1, 64.0, vec![])], // no room for 0.5-core template
        );
        assert!(hpa().decide(&view).is_empty());
    }

    #[test]
    fn zero_replicas_restores_minimum() {
        let view = view_of(0, vec![], vec![node(1, 4.0, 8192.0, vec![])]);
        let actions = hpa().decide(&view);
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], ScalingAction::Spawn { .. }));
    }

    #[test]
    fn config_validation() {
        assert!(HpaConfig::default().validate().is_ok());
        assert!(HpaConfig {
            target: 0.0,
            ..HpaConfig::default()
        }
        .validate()
        .is_err());
        assert!(HpaConfig {
            tolerance: 1.0,
            ..HpaConfig::default()
        }
        .validate()
        .is_err());
        assert!(HpaConfig {
            min_replicas: 0,
            ..HpaConfig::default()
        }
        .validate()
        .is_err());
        assert!(HpaConfig {
            max_replicas: 0,
            ..HpaConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid HpaConfig")]
    fn invalid_config_panics_at_construction() {
        let _ = KubernetesHpa::new(HpaConfig {
            target: -1.0,
            ..HpaConfig::default()
        });
    }

    #[test]
    fn pack_placement_fills_smaller_nodes_first() {
        let config = HpaConfig {
            placement: crate::algorithms::PlacementPolicy::Pack,
            ..HpaConfig::default()
        };
        let view = view_of(
            0,
            vec![replica(0, 0, 0.8, 0.5)], // wants 4 replicas total
            vec![node(1, 1.0, 8192.0, vec![]), node(2, 8.0, 8192.0, vec![])],
        );
        let actions = KubernetesHpa::new(config).decide(&view);
        let first_node = actions.iter().find_map(|a| match a {
            ScalingAction::Spawn { node, .. } => Some(*node),
            _ => None,
        });
        assert_eq!(
            first_node,
            Some(NodeId::new(1)),
            "pack fills the fuller node first"
        );
    }

    #[test]
    fn removal_prefers_least_loaded_replicas() {
        let mut busy = replica(0, 0, 0.05, 0.5);
        busy.in_flight = 50;
        let idle = replica(1, 1, 0.05, 0.5);
        let view = view_of(0, vec![busy, replica(2, 2, 0.05, 0.5), idle], vec![]);
        let actions = hpa().decide(&view);
        let removed: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                ScalingAction::Remove { container } => Some(*container),
                _ => None,
            })
            .collect();
        assert!(!removed.contains(&hyscale_cluster::ContainerId::new(0)));
    }
}
