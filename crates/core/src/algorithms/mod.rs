//! The four autoscaling algorithms and their shared machinery.
//!
//! Every algorithm is a pure decision function over a [`ClusterView`]
//! (plus its own throttle state): it never touches the cluster directly,
//! the [`Monitor`](crate::Monitor) applies what it returns. This mirrors
//! the paper's separation between the AUTOSCALER module and the MONITOR.

mod hyscale;
mod kubernetes;
mod network;
mod placement;
mod vertical;

pub use hyscale::{HyScaleConfig, HyScaleCpu, HyScaleCpuMem};
pub use kubernetes::{HpaConfig, KubernetesHpa};
pub use network::NetworkHpa;
pub use placement::PlacementPolicy;
pub use vertical::VerticalOnly;

use std::collections::HashMap;

use hyscale_cluster::{ContainerId, ServiceId};
use hyscale_sim::{SimDuration, SimTime};
use hyscale_trace::{EventKind, TraceSink};

use crate::actions::ScalingAction;
use crate::view::ClusterView;

/// An autoscaling policy: examines the periodic cluster snapshot and
/// returns the scaling actions to apply.
pub trait Autoscaler: std::fmt::Debug + Send {
    /// Short name used in reports ("kubernetes", "hybrid", ...).
    fn name(&self) -> &'static str;

    /// Produces the actions for this period.
    fn decide(&mut self, view: &ClusterView) -> Vec<ScalingAction>;

    /// Like [`Autoscaler::decide`], but additionally records the
    /// algorithm's metric evaluations and verdicts into `trace`.
    ///
    /// The default implementation just delegates to `decide` and traces
    /// nothing; algorithms that expose their reasoning override this (and
    /// implement `decide` as `decide_traced` with a disabled sink).
    fn decide_traced(&mut self, view: &ClusterView, trace: &mut TraceSink) -> Vec<ScalingAction> {
        let _ = trace;
        self.decide(view)
    }

    /// The algorithm's rescale-gate state as sorted `(service index,
    /// blocked-until µs)` pairs, for snapshot serialization. Stateless
    /// algorithms return an empty list (the default).
    fn gate_entries(&self) -> Vec<(u32, u64)> {
        Vec::new()
    }

    /// Restores rescale-gate state captured by
    /// [`Autoscaler::gate_entries`]. A no-op for stateless algorithms.
    fn restore_gate(&mut self, entries: &[(u32, u64)]) {
        let _ = entries;
    }
}

/// Selects an algorithm by name (the paper's command-line switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// No autoscaling: the initial allocation is left untouched
    /// (used by the Section III manual scaling studies).
    None,
    /// The Kubernetes horizontal CPU autoscaler (baseline).
    Kubernetes,
    /// The paper's horizontal network-bandwidth autoscaler.
    Network,
    /// HyScaleCPU: hybrid vertical+horizontal scaling on CPU.
    HyScaleCpu,
    /// HyScaleCPU+Mem: hybrid scaling on CPU and memory/swap.
    HyScaleCpuMem,
    /// Vertical-only scaling on CPU and memory (ElasticDocker-style
    /// related-work baseline; never replicates).
    VerticalOnly,
}

impl AlgorithmKind {
    /// All benchmarkable algorithms, in the order the paper's figures
    /// list them.
    pub const ALL: [AlgorithmKind; 4] = [
        AlgorithmKind::Kubernetes,
        AlgorithmKind::Network,
        AlgorithmKind::HyScaleCpu,
        AlgorithmKind::HyScaleCpuMem,
    ];

    /// Builds the algorithm with the given shared parameters.
    ///
    /// `hpa` parameterizes the two horizontal baselines; `hyscale`
    /// parameterizes the two hybrid algorithms.
    pub fn build(self, hpa: HpaConfig, hyscale: HyScaleConfig) -> Box<dyn Autoscaler> {
        match self {
            AlgorithmKind::None => Box::new(NoScaling),
            AlgorithmKind::Kubernetes => Box::new(KubernetesHpa::new(hpa)),
            AlgorithmKind::Network => Box::new(NetworkHpa::new(hpa)),
            AlgorithmKind::HyScaleCpu => Box::new(HyScaleCpu::new(hyscale)),
            AlgorithmKind::HyScaleCpuMem => Box::new(HyScaleCpuMem::new(hyscale)),
            AlgorithmKind::VerticalOnly => Box::new(VerticalOnly::new(hyscale)),
        }
    }

    /// The name the paper's figures use for this algorithm.
    pub fn label(self) -> &'static str {
        match self {
            AlgorithmKind::None => "none",
            AlgorithmKind::Kubernetes => "kubernetes",
            AlgorithmKind::Network => "network",
            AlgorithmKind::HyScaleCpu => "hybrid",
            AlgorithmKind::HyScaleCpuMem => "hybridmem",
            AlgorithmKind::VerticalOnly => "vertical",
        }
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Drops capacity-reducing actions for services whose view data is older
/// than the staleness budget, returning the surviving actions and the
/// number of vetoes.
///
/// The asymmetry is deliberate and applies uniformly downstream of every
/// algorithm: a wrong scale-*in* on stale data destroys capacity the
/// service may still need, while a deferred scale-*out* only delays
/// relief — so `Spawn` always passes, and for stale services we veto
/// `Remove`, allocation-*lowering* `Update`s, and `SetNetCap` caps
/// (lifting a cap is allowed). Actions targeting containers the view
/// does not know pass through; the Monitor already drops actions on
/// unknown entities.
///
/// Each veto emits an [`EventKind::StaleVeto`] into `trace`.
pub fn veto_stale_reductions(
    view: &ClusterView,
    algorithm: &'static str,
    actions: Vec<ScalingAction>,
    trace: &mut TraceSink,
) -> (Vec<ScalingAction>, u64) {
    // container -> its service's view index, for reverse lookup.
    let owner =
        |container: ContainerId| -> Option<(&crate::view::ServiceView, &crate::view::ReplicaView)> {
            view.services.iter().find_map(|s| {
                s.replicas
                    .iter()
                    .find(|r| r.container == container)
                    .map(|r| (s, r))
            })
        };
    let mut vetoes = 0u64;
    let mut kept = Vec::with_capacity(actions.len());
    for action in actions {
        let reduction = match action {
            ScalingAction::Spawn { .. } => None,
            ScalingAction::Remove { container } => owner(container).map(|(s, _)| s),
            ScalingAction::Update {
                container,
                cpu,
                mem,
            } => owner(container).and_then(|(s, r)| {
                let lowers_cpu = cpu.is_some_and(|c| c < r.cpu_requested);
                let lowers_mem = mem.is_some_and(|m| m < r.mem_limit);
                (lowers_cpu || lowers_mem).then_some(s)
            }),
            ScalingAction::SetNetCap { container, cap } => {
                owner(container).and_then(|(s, _)| cap.is_some().then_some(s))
            }
        };
        match reduction {
            Some(s) if s.max_age_ticks() > view.staleness_budget_ticks => {
                vetoes += 1;
                trace.emit(
                    view.now,
                    EventKind::StaleVeto {
                        algorithm,
                        service: s.service.index(),
                        age_ticks: s.max_age_ticks(),
                        budget_ticks: view.staleness_budget_ticks,
                    },
                );
            }
            _ => kept.push(action),
        }
    }
    (kept, vetoes)
}

/// The do-nothing policy used by the manual scaling studies of Sec. III.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoScaling;

impl Autoscaler for NoScaling {
    fn name(&self) -> &'static str {
        "none"
    }

    fn decide(&mut self, _view: &ClusterView) -> Vec<ScalingAction> {
        Vec::new()
    }
}

/// Per-service rescale-interval throttle (the paper's anti-thrashing
/// mechanism): after a horizontal scaling operation, *all* further
/// horizontal operations on that service are halted until the interval
/// passes — 3 s after a scale-up, 50 s after a scale-down in the paper's
/// experiments. Vertical scaling is exempt.
#[derive(Debug, Clone)]
pub struct RescaleGate {
    up_interval: SimDuration,
    down_interval: SimDuration,
    blocked_until: HashMap<ServiceId, SimTime>,
}

impl RescaleGate {
    /// Creates a gate with the paper's default intervals (3 s / 50 s).
    pub fn paper_defaults() -> Self {
        RescaleGate::new(SimDuration::from_secs(3.0), SimDuration::from_secs(50.0))
    }

    /// Creates a gate with explicit intervals.
    pub fn new(up_interval: SimDuration, down_interval: SimDuration) -> Self {
        RescaleGate {
            up_interval,
            down_interval,
            blocked_until: HashMap::new(),
        }
    }

    /// A gate that never blocks (the thrash-guard ablation's control arm).
    pub fn disabled() -> Self {
        RescaleGate::new(SimDuration::ZERO, SimDuration::ZERO)
    }

    /// True if horizontal scaling of `service` is currently allowed.
    pub fn allows(&self, service: ServiceId, now: SimTime) -> bool {
        self.blocked_until
            .get(&service)
            .is_none_or(|&until| now >= until)
    }

    /// Records that `service` scaled up at `now`, blocking further
    /// horizontal operations for the scale-up interval.
    pub fn record_up(&mut self, service: ServiceId, now: SimTime) {
        self.blocked_until.insert(service, now + self.up_interval);
    }

    /// Records that `service` scaled down at `now`, blocking further
    /// horizontal operations for the scale-down interval.
    pub fn record_down(&mut self, service: ServiceId, now: SimTime) {
        self.blocked_until.insert(service, now + self.down_interval);
    }

    /// The throttle table as sorted `(service index, blocked-until µs)`
    /// pairs (snapshot support).
    pub fn entries(&self) -> Vec<(u32, u64)> {
        let mut out: Vec<(u32, u64)> = self
            .blocked_until
            .iter()
            .map(|(svc, until)| (svc.index(), until.as_micros()))
            .collect();
        out.sort_unstable();
        out
    }

    /// Replaces the throttle table with entries captured by
    /// [`RescaleGate::entries`] (snapshot support). The configured
    /// intervals are kept — they come from scenario config, not state.
    pub fn restore_entries(&mut self, entries: &[(u32, u64)]) {
        self.blocked_until = entries
            .iter()
            .map(|&(svc, until)| (ServiceId::new(svc), SimTime::from_micros(until)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::test_support::view_of;

    #[test]
    fn no_scaling_never_acts() {
        let mut algo = NoScaling;
        assert_eq!(algo.name(), "none");
        let view = view_of(0, vec![], vec![]);
        assert!(algo.decide(&view).is_empty());
    }

    #[test]
    fn kind_labels_match_figures() {
        assert_eq!(AlgorithmKind::Kubernetes.label(), "kubernetes");
        assert_eq!(AlgorithmKind::HyScaleCpu.label(), "hybrid");
        assert_eq!(AlgorithmKind::HyScaleCpuMem.label(), "hybridmem");
        assert_eq!(AlgorithmKind::Network.to_string(), "network");
    }

    #[test]
    fn build_produces_matching_names() {
        for kind in AlgorithmKind::ALL {
            let algo = kind.build(HpaConfig::default(), HyScaleConfig::default());
            assert_eq!(algo.name(), kind.label());
        }
    }

    #[test]
    fn gate_blocks_after_up_until_interval() {
        let mut gate = RescaleGate::new(SimDuration::from_secs(3.0), SimDuration::from_secs(50.0));
        let svc = ServiceId::new(0);
        let t0 = SimTime::from_secs(100.0);
        assert!(gate.allows(svc, t0));
        gate.record_up(svc, t0);
        assert!(!gate.allows(svc, t0 + SimDuration::from_secs(1.0)));
        assert!(gate.allows(svc, t0 + SimDuration::from_secs(3.0)));
    }

    #[test]
    fn gate_down_interval_is_longer() {
        let mut gate = RescaleGate::paper_defaults();
        let svc = ServiceId::new(0);
        let t0 = SimTime::from_secs(0.0);
        gate.record_down(svc, t0);
        assert!(!gate.allows(svc, SimTime::from_secs(49.0)));
        assert!(gate.allows(svc, SimTime::from_secs(50.0)));
    }

    #[test]
    fn gate_is_per_service() {
        let mut gate = RescaleGate::paper_defaults();
        gate.record_down(ServiceId::new(0), SimTime::ZERO);
        assert!(gate.allows(ServiceId::new(1), SimTime::from_secs(1.0)));
    }

    #[test]
    fn disabled_gate_never_blocks() {
        let mut gate = RescaleGate::disabled();
        let svc = ServiceId::new(0);
        gate.record_down(svc, SimTime::from_secs(10.0));
        assert!(gate.allows(svc, SimTime::from_secs(10.0)));
    }

    mod stale_veto {
        use super::super::*;
        use crate::view::test_support::{replica, view_of};
        use hyscale_cluster::{Cores, Mbps, MemMb, NodeId};

        fn stale_view() -> ClusterView {
            let mut r = replica(0, 0, 0.2, 0.5);
            r.age_ticks = 3; // budget in view_of is 1
            view_of(0, vec![r], vec![])
        }

        fn actions() -> Vec<ScalingAction> {
            vec![
                ScalingAction::Remove {
                    container: ContainerId::new(0),
                },
                ScalingAction::Spawn {
                    service: ServiceId::new(0),
                    node: NodeId::new(1),
                    cpu: Cores(0.5),
                    mem: MemMb(256.0),
                },
            ]
        }

        #[test]
        fn stale_service_keeps_spawns_but_loses_removes() {
            let view = stale_view();
            let mut trace = TraceSink::with_capacity(8);
            let (kept, vetoes) = veto_stale_reductions(&view, "test", actions(), &mut trace);
            assert_eq!(vetoes, 1);
            assert_eq!(kept.len(), 1);
            assert!(matches!(kept[0], ScalingAction::Spawn { .. }));
            assert!(trace.events().any(|e| matches!(
                e.kind,
                EventKind::StaleVeto {
                    age_ticks: 3,
                    budget_ticks: 1,
                    ..
                }
            )));
        }

        #[test]
        fn fresh_service_passes_everything() {
            let view = view_of(0, vec![replica(0, 0, 0.2, 0.5)], vec![]);
            let mut trace = TraceSink::disabled();
            let (kept, vetoes) = veto_stale_reductions(&view, "test", actions(), &mut trace);
            assert_eq!(vetoes, 0);
            assert_eq!(kept.len(), 2);
        }

        #[test]
        fn updates_are_vetoed_only_when_they_lower_allocations() {
            let view = stale_view();
            let mut trace = TraceSink::disabled();
            let raise = ScalingAction::Update {
                container: ContainerId::new(0),
                cpu: Some(Cores(1.0)), // above the current 0.5 request
                mem: None,
            };
            let lower = ScalingAction::Update {
                container: ContainerId::new(0),
                cpu: Some(Cores(0.25)),
                mem: None,
            };
            let (kept, vetoes) =
                veto_stale_reductions(&view, "test", vec![raise, lower], &mut trace);
            assert_eq!(vetoes, 1);
            assert_eq!(kept, vec![raise]);
        }

        #[test]
        fn net_caps_are_vetoed_but_uncapping_is_not() {
            let view = stale_view();
            let mut trace = TraceSink::disabled();
            let cap = ScalingAction::SetNetCap {
                container: ContainerId::new(0),
                cap: Some(Mbps(10.0)),
            };
            let uncap = ScalingAction::SetNetCap {
                container: ContainerId::new(0),
                cap: None,
            };
            let (kept, vetoes) = veto_stale_reductions(&view, "test", vec![cap, uncap], &mut trace);
            assert_eq!(vetoes, 1);
            assert_eq!(kept, vec![uncap]);
        }

        #[test]
        fn unknown_containers_pass_through() {
            let view = stale_view();
            let mut trace = TraceSink::disabled();
            let ghost = ScalingAction::Remove {
                container: ContainerId::new(99),
            };
            let (kept, vetoes) = veto_stale_reductions(&view, "test", vec![ghost], &mut trace);
            assert_eq!(vetoes, 0);
            assert_eq!(kept, vec![ghost]);
        }
    }
}
