//! The four autoscaling algorithms and their shared machinery.
//!
//! Every algorithm is a pure decision function over a [`ClusterView`]
//! (plus its own throttle state): it never touches the cluster directly,
//! the [`Monitor`](crate::Monitor) applies what it returns. This mirrors
//! the paper's separation between the AUTOSCALER module and the MONITOR.

mod hyscale;
mod kubernetes;
mod network;
mod placement;
mod vertical;

pub use hyscale::{HyScaleConfig, HyScaleCpu, HyScaleCpuMem};
pub use kubernetes::{HpaConfig, KubernetesHpa};
pub use network::NetworkHpa;
pub use placement::PlacementPolicy;
pub use vertical::VerticalOnly;

use std::collections::HashMap;

use hyscale_cluster::ServiceId;
use hyscale_sim::{SimDuration, SimTime};
use hyscale_trace::TraceSink;

use crate::actions::ScalingAction;
use crate::view::ClusterView;

/// An autoscaling policy: examines the periodic cluster snapshot and
/// returns the scaling actions to apply.
pub trait Autoscaler: std::fmt::Debug + Send {
    /// Short name used in reports ("kubernetes", "hybrid", ...).
    fn name(&self) -> &'static str;

    /// Produces the actions for this period.
    fn decide(&mut self, view: &ClusterView) -> Vec<ScalingAction>;

    /// Like [`Autoscaler::decide`], but additionally records the
    /// algorithm's metric evaluations and verdicts into `trace`.
    ///
    /// The default implementation just delegates to `decide` and traces
    /// nothing; algorithms that expose their reasoning override this (and
    /// implement `decide` as `decide_traced` with a disabled sink).
    fn decide_traced(&mut self, view: &ClusterView, trace: &mut TraceSink) -> Vec<ScalingAction> {
        let _ = trace;
        self.decide(view)
    }
}

/// Selects an algorithm by name (the paper's command-line switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// No autoscaling: the initial allocation is left untouched
    /// (used by the Section III manual scaling studies).
    None,
    /// The Kubernetes horizontal CPU autoscaler (baseline).
    Kubernetes,
    /// The paper's horizontal network-bandwidth autoscaler.
    Network,
    /// HyScaleCPU: hybrid vertical+horizontal scaling on CPU.
    HyScaleCpu,
    /// HyScaleCPU+Mem: hybrid scaling on CPU and memory/swap.
    HyScaleCpuMem,
    /// Vertical-only scaling on CPU and memory (ElasticDocker-style
    /// related-work baseline; never replicates).
    VerticalOnly,
}

impl AlgorithmKind {
    /// All benchmarkable algorithms, in the order the paper's figures
    /// list them.
    pub const ALL: [AlgorithmKind; 4] = [
        AlgorithmKind::Kubernetes,
        AlgorithmKind::Network,
        AlgorithmKind::HyScaleCpu,
        AlgorithmKind::HyScaleCpuMem,
    ];

    /// Builds the algorithm with the given shared parameters.
    ///
    /// `hpa` parameterizes the two horizontal baselines; `hyscale`
    /// parameterizes the two hybrid algorithms.
    pub fn build(self, hpa: HpaConfig, hyscale: HyScaleConfig) -> Box<dyn Autoscaler> {
        match self {
            AlgorithmKind::None => Box::new(NoScaling),
            AlgorithmKind::Kubernetes => Box::new(KubernetesHpa::new(hpa)),
            AlgorithmKind::Network => Box::new(NetworkHpa::new(hpa)),
            AlgorithmKind::HyScaleCpu => Box::new(HyScaleCpu::new(hyscale)),
            AlgorithmKind::HyScaleCpuMem => Box::new(HyScaleCpuMem::new(hyscale)),
            AlgorithmKind::VerticalOnly => Box::new(VerticalOnly::new(hyscale)),
        }
    }

    /// The name the paper's figures use for this algorithm.
    pub fn label(self) -> &'static str {
        match self {
            AlgorithmKind::None => "none",
            AlgorithmKind::Kubernetes => "kubernetes",
            AlgorithmKind::Network => "network",
            AlgorithmKind::HyScaleCpu => "hybrid",
            AlgorithmKind::HyScaleCpuMem => "hybridmem",
            AlgorithmKind::VerticalOnly => "vertical",
        }
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The do-nothing policy used by the manual scaling studies of Sec. III.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoScaling;

impl Autoscaler for NoScaling {
    fn name(&self) -> &'static str {
        "none"
    }

    fn decide(&mut self, _view: &ClusterView) -> Vec<ScalingAction> {
        Vec::new()
    }
}

/// Per-service rescale-interval throttle (the paper's anti-thrashing
/// mechanism): after a horizontal scaling operation, *all* further
/// horizontal operations on that service are halted until the interval
/// passes — 3 s after a scale-up, 50 s after a scale-down in the paper's
/// experiments. Vertical scaling is exempt.
#[derive(Debug, Clone)]
pub struct RescaleGate {
    up_interval: SimDuration,
    down_interval: SimDuration,
    blocked_until: HashMap<ServiceId, SimTime>,
}

impl RescaleGate {
    /// Creates a gate with the paper's default intervals (3 s / 50 s).
    pub fn paper_defaults() -> Self {
        RescaleGate::new(SimDuration::from_secs(3.0), SimDuration::from_secs(50.0))
    }

    /// Creates a gate with explicit intervals.
    pub fn new(up_interval: SimDuration, down_interval: SimDuration) -> Self {
        RescaleGate {
            up_interval,
            down_interval,
            blocked_until: HashMap::new(),
        }
    }

    /// A gate that never blocks (the thrash-guard ablation's control arm).
    pub fn disabled() -> Self {
        RescaleGate::new(SimDuration::ZERO, SimDuration::ZERO)
    }

    /// True if horizontal scaling of `service` is currently allowed.
    pub fn allows(&self, service: ServiceId, now: SimTime) -> bool {
        self.blocked_until
            .get(&service)
            .is_none_or(|&until| now >= until)
    }

    /// Records that `service` scaled up at `now`, blocking further
    /// horizontal operations for the scale-up interval.
    pub fn record_up(&mut self, service: ServiceId, now: SimTime) {
        self.blocked_until.insert(service, now + self.up_interval);
    }

    /// Records that `service` scaled down at `now`, blocking further
    /// horizontal operations for the scale-down interval.
    pub fn record_down(&mut self, service: ServiceId, now: SimTime) {
        self.blocked_until.insert(service, now + self.down_interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::test_support::view_of;

    #[test]
    fn no_scaling_never_acts() {
        let mut algo = NoScaling;
        assert_eq!(algo.name(), "none");
        let view = view_of(0, vec![], vec![]);
        assert!(algo.decide(&view).is_empty());
    }

    #[test]
    fn kind_labels_match_figures() {
        assert_eq!(AlgorithmKind::Kubernetes.label(), "kubernetes");
        assert_eq!(AlgorithmKind::HyScaleCpu.label(), "hybrid");
        assert_eq!(AlgorithmKind::HyScaleCpuMem.label(), "hybridmem");
        assert_eq!(AlgorithmKind::Network.to_string(), "network");
    }

    #[test]
    fn build_produces_matching_names() {
        for kind in AlgorithmKind::ALL {
            let algo = kind.build(HpaConfig::default(), HyScaleConfig::default());
            assert_eq!(algo.name(), kind.label());
        }
    }

    #[test]
    fn gate_blocks_after_up_until_interval() {
        let mut gate = RescaleGate::new(SimDuration::from_secs(3.0), SimDuration::from_secs(50.0));
        let svc = ServiceId::new(0);
        let t0 = SimTime::from_secs(100.0);
        assert!(gate.allows(svc, t0));
        gate.record_up(svc, t0);
        assert!(!gate.allows(svc, t0 + SimDuration::from_secs(1.0)));
        assert!(gate.allows(svc, t0 + SimDuration::from_secs(3.0)));
    }

    #[test]
    fn gate_down_interval_is_longer() {
        let mut gate = RescaleGate::paper_defaults();
        let svc = ServiceId::new(0);
        let t0 = SimTime::from_secs(0.0);
        gate.record_down(svc, t0);
        assert!(!gate.allows(svc, SimTime::from_secs(49.0)));
        assert!(gate.allows(svc, SimTime::from_secs(50.0)));
    }

    #[test]
    fn gate_is_per_service() {
        let mut gate = RescaleGate::paper_defaults();
        gate.record_down(ServiceId::new(0), SimTime::ZERO);
        assert!(gate.allows(ServiceId::new(1), SimTime::from_secs(1.0)));
    }

    #[test]
    fn disabled_gate_never_blocks() {
        let mut gate = RescaleGate::disabled();
        let svc = ServiceId::new(0);
        gate.record_down(svc, SimTime::from_secs(10.0));
        assert!(gate.allows(svc, SimTime::from_secs(10.0)));
    }
}
