//! Placement policies for horizontal scale-out.
//!
//! The paper's future work names a *cost-based aspect*: data centres pay
//! per powered-on machine, so packing replicas onto fewer nodes saves
//! power, while spreading them maximizes headroom and fault isolation.
//! Both policies are available to every algorithm; the default matches
//! the spreading behaviour of Kubernetes' scheduler. The `ablation`
//! binary quantifies the trade-off via busy-node-hours.

/// How a scaler chooses among feasible nodes when spawning a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementPolicy {
    /// Prefer the node with the *most* free CPU (Kubernetes-style
    /// spreading; maximizes per-replica headroom).
    #[default]
    Spread,
    /// Prefer the node with the *least* free CPU that still fits
    /// (first-fit-decreasing bin packing; minimizes powered-on machines,
    /// the paper's cost motivation).
    Pack,
}

impl PlacementPolicy {
    /// Orders two candidate nodes by preference; the "smaller" one wins.
    ///
    /// `free_a`/`free_b` are the nodes' free CPU. Ties break toward the
    /// lower node id (`id_a`, `id_b`) for determinism.
    pub fn prefer(self, free_a: f64, id_a: u32, free_b: f64, id_b: u32) -> std::cmp::Ordering {
        let by_free = match self {
            PlacementPolicy::Spread => free_b
                .partial_cmp(&free_a)
                .unwrap_or(std::cmp::Ordering::Equal),
            PlacementPolicy::Pack => free_a
                .partial_cmp(&free_b)
                .unwrap_or(std::cmp::Ordering::Equal),
        };
        by_free.then(id_a.cmp(&id_b))
    }
}

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementPolicy::Spread => write!(f, "spread"),
            PlacementPolicy::Pack => write!(f, "pack"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn spread_prefers_most_free() {
        let p = PlacementPolicy::Spread;
        assert_eq!(p.prefer(4.0, 0, 1.0, 1), Ordering::Less);
        assert_eq!(p.prefer(1.0, 0, 4.0, 1), Ordering::Greater);
    }

    #[test]
    fn pack_prefers_least_free() {
        let p = PlacementPolicy::Pack;
        assert_eq!(p.prefer(1.0, 0, 4.0, 1), Ordering::Less);
        assert_eq!(p.prefer(4.0, 0, 1.0, 1), Ordering::Greater);
    }

    #[test]
    fn ties_break_by_node_id() {
        for p in [PlacementPolicy::Spread, PlacementPolicy::Pack] {
            assert_eq!(p.prefer(2.0, 0, 2.0, 1), Ordering::Less);
            assert_eq!(p.prefer(2.0, 3, 2.0, 1), Ordering::Greater);
        }
    }

    #[test]
    fn default_is_spread_and_displays() {
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::Spread);
        assert_eq!(PlacementPolicy::Spread.to_string(), "spread");
        assert_eq!(PlacementPolicy::Pack.to_string(), "pack");
    }
}
