//! The paper's exploratory network scaling algorithm (Sec. IV-A.2).
//!
//! "This algorithm uses the same algorithm as Kubernetes, but replaces CPU
//! usage for outgoing network bandwidth usage in its calculations." It is
//! purely horizontal: Sec. III-C showed vertical network scaling to be
//! ≈ neutral (fair `tc` sharing) while horizontal scaling relieves
//! tx-queue contention, so replication is the only lever worth pulling.

use hyscale_trace::TraceSink;

use crate::actions::ScalingAction;
use crate::algorithms::kubernetes::{HpaConfig, HpaMetric, KubernetesHpa};
use crate::algorithms::Autoscaler;
use crate::view::ClusterView;

/// The horizontal autoscaler driven by egress-bandwidth utilization.
#[derive(Debug)]
pub struct NetworkHpa {
    inner: KubernetesHpa,
}

impl NetworkHpa {
    /// Creates the network scaler with the given parameters (the target is
    /// interpreted against each replica's `net_request`).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`HpaConfig::validate`]).
    pub fn new(config: HpaConfig) -> Self {
        NetworkHpa {
            inner: KubernetesHpa::with_metric(config, HpaMetric::Network, "network"),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HpaConfig {
        self.inner.config()
    }
}

impl Autoscaler for NetworkHpa {
    fn name(&self) -> &'static str {
        "network"
    }

    fn decide(&mut self, view: &ClusterView) -> Vec<ScalingAction> {
        self.inner.decide(view)
    }

    fn decide_traced(&mut self, view: &ClusterView, trace: &mut TraceSink) -> Vec<ScalingAction> {
        self.inner.decide_traced(view, trace)
    }

    fn gate_entries(&self) -> Vec<(u32, u64)> {
        self.inner.gate_entries()
    }

    fn restore_gate(&mut self, entries: &[(u32, u64)]) {
        self.inner.restore_gate(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::test_support::{node, replica, view_of};
    use hyscale_cluster::Mbps;

    #[test]
    fn scales_on_network_not_cpu() {
        // CPU is idle but egress is at 160% of the request: the network
        // scaler must scale out even though the CPU scaler would not.
        let mut r = replica(0, 0, 0.01, 0.5);
        r.net_used = Mbps(80.0);
        r.net_requested = Mbps(50.0);
        let view = view_of(0, vec![r], vec![node(1, 4.0, 8192.0, vec![])]);

        let net_actions = NetworkHpa::new(HpaConfig::default()).decide(&view);
        assert!(!net_actions.is_empty());
        assert!(net_actions.iter().all(|a| a.is_horizontal()));

        let cpu_actions = KubernetesHpa::new(HpaConfig::default()).decide(&view);
        // CPU scaler sees util 0.02 -> desired 1 == current (min replicas).
        assert!(cpu_actions.is_empty());
    }

    #[test]
    fn idle_network_scales_in() {
        let mk = |c: u32, n: u32| {
            let mut r = replica(c, n, 0.01, 0.5);
            r.net_used = Mbps(2.0);
            r.net_requested = Mbps(50.0);
            r
        };
        let view = view_of(0, vec![mk(0, 0), mk(1, 1), mk(2, 2)], vec![]);
        let actions = NetworkHpa::new(HpaConfig::default()).decide(&view);
        assert_eq!(actions.len(), 2);
        assert!(actions
            .iter()
            .all(|a| matches!(a, ScalingAction::Remove { .. })));
    }

    #[test]
    fn name_is_network() {
        assert_eq!(NetworkHpa::new(HpaConfig::default()).name(), "network");
        assert_eq!(NetworkHpa::new(HpaConfig::default()).config().target, 0.5);
    }
}
