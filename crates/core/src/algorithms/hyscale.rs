//! The HyScale hybrid autoscaling algorithms (paper Sec. IV-B).
//!
//! Both algorithms compute, per microservice, the number of *missing*
//! resources relative to a target utilization:
//!
//! ```text
//! Missing_m = (Σ usage_r − Σ requested_r · Target_m) / Target_m
//! ```
//!
//! A negative value triggers the **reclamation phase**: replicas are
//! vertically scaled down toward `usage_r / (Target·0.9)`, and a replica
//! whose allocation would fall below a minimum threshold (0.1 CPUs) is
//! removed entirely. A positive value triggers the **acquisition phase**:
//! replicas vertically acquire up to
//! `Required_r = usage_r/(Target·0.9) − requested_r`, bounded by what
//! their node has free; only if vertical scaling cannot cover the
//! remainder is a new replica spawned — on a node *not* hosting the
//! service that advertises at least the service's baseline memory and a
//! minimum CPU allocation (0.25 CPUs).
//!
//! [`HyScaleCpu`] applies this to CPU only; [`HyScaleCpuMem`] runs the
//! same machinery on CPU *and* memory (swap included in usage), with the
//! removal and placement thresholds required to hold **mutually** on both
//! dimensions.
//!
//! Horizontal actions are throttled by the rescale-interval gate;
//! vertical actions are exempt ("vertical scaling must perform
//! fine-grained adjustments quickly and frequently").

use std::collections::HashMap;

use hyscale_cluster::{ContainerId, Cores, MemMb, NodeId};
use hyscale_sim::SimDuration;
use hyscale_trace::{EventKind, Metric, TraceSink, Verdict};

use crate::actions::ScalingAction;
use crate::algorithms::{Autoscaler, PlacementPolicy, RescaleGate};
use crate::view::{ClusterView, ServiceView};

/// Parameters of the hybrid algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyScaleConfig {
    /// CPU target utilization as a fraction of the request (0.5 = 50%).
    pub cpu_target: f64,
    /// Memory target utilization as a fraction of the limit.
    pub mem_target: f64,
    /// The paper's 0.9 headroom factor: vertical adjustments aim at
    /// `usage / (target · headroom)`.
    pub headroom: f64,
    /// Lower bound on replicas per service (fault-tolerance floor).
    pub min_replicas: usize,
    /// Upper bound on replicas per service.
    pub max_replicas: usize,
    /// Replica removal threshold: an instance vertically scaled below
    /// this CPU allocation is removed (paper: 0.1 CPUs).
    pub min_cpu_remove: Cores,
    /// Placement threshold: a node must advertise at least this much free
    /// CPU to receive a new replica (paper: 0.25 CPUs).
    pub min_cpu_spawn: Cores,
    /// Memory analogue of the removal threshold (CPU+Mem variant).
    pub min_mem_remove: MemMb,
    /// Ignore vertical CPU adjustments smaller than this (anti-churn).
    pub min_cpu_change: Cores,
    /// Ignore vertical memory adjustments smaller than this (anti-churn).
    pub min_mem_change: MemMb,
    /// Minimum interval after a horizontal scale-up.
    pub scale_up_interval: SimDuration,
    /// Minimum interval after a horizontal scale-down.
    pub scale_down_interval: SimDuration,
    /// Node-selection policy for new replicas.
    pub placement: PlacementPolicy,
}

impl Default for HyScaleConfig {
    fn default() -> Self {
        HyScaleConfig {
            cpu_target: 0.5,
            mem_target: 0.5,
            headroom: 0.9,
            min_replicas: 1,
            max_replicas: 16,
            min_cpu_remove: Cores(0.1),
            min_cpu_spawn: Cores(0.25),
            min_mem_remove: MemMb(48.0),
            min_cpu_change: Cores(0.02),
            min_mem_change: MemMb(8.0),
            scale_up_interval: SimDuration::from_secs(3.0),
            scale_down_interval: SimDuration::from_secs(50.0),
            placement: PlacementPolicy::Spread,
        }
    }
}

impl HyScaleConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.cpu_target > 0.0 && self.cpu_target.is_finite()) {
            return Err(format!(
                "cpu_target must be positive, got {}",
                self.cpu_target
            ));
        }
        if !(self.mem_target > 0.0 && self.mem_target.is_finite()) {
            return Err(format!(
                "mem_target must be positive, got {}",
                self.mem_target
            ));
        }
        if !(0.0 < self.headroom && self.headroom <= 1.0) {
            return Err(format!("headroom must be in (0,1], got {}", self.headroom));
        }
        if self.min_replicas == 0 {
            return Err("min_replicas must be at least 1".to_string());
        }
        if self.max_replicas < self.min_replicas {
            return Err("max_replicas must be >= min_replicas".to_string());
        }
        if self.min_cpu_remove.get() < 0.0 || self.min_cpu_spawn.get() <= 0.0 {
            return Err("CPU thresholds must be non-negative/positive".to_string());
        }
        Ok(())
    }
}

/// Free resources the algorithm tracks locally while planning a period,
/// so successive acquisitions in one decision see depleted nodes.
#[derive(Debug, Clone)]
struct FreeMap {
    cpu: HashMap<NodeId, f64>,
    mem: HashMap<NodeId, f64>,
}

impl FreeMap {
    fn from_view(view: &ClusterView) -> Self {
        FreeMap {
            cpu: view
                .nodes
                .iter()
                .map(|n| (n.node, n.free_cpu.get()))
                .collect(),
            mem: view
                .nodes
                .iter()
                .map(|n| (n.node, n.free_mem.get()))
                .collect(),
        }
    }

    fn cpu(&self, node: NodeId) -> f64 {
        self.cpu.get(&node).copied().unwrap_or(0.0)
    }

    fn mem(&self, node: NodeId) -> f64 {
        self.mem.get(&node).copied().unwrap_or(0.0)
    }

    fn take_cpu(&mut self, node: NodeId, amount: f64) {
        *self.cpu.entry(node).or_insert(0.0) -= amount;
    }

    fn take_mem(&mut self, node: NodeId, amount: f64) {
        *self.mem.entry(node).or_insert(0.0) -= amount;
    }

    fn give_cpu(&mut self, node: NodeId, amount: f64) {
        *self.cpu.entry(node).or_insert(0.0) += amount;
    }

    fn give_mem(&mut self, node: NodeId, amount: f64) {
        *self.mem.entry(node).or_insert(0.0) += amount;
    }
}

/// The shared hybrid engine; `consider_memory` selects between the two
/// published variants.
#[derive(Debug)]
struct HybridEngine {
    config: HyScaleConfig,
    gate: RescaleGate,
    consider_memory: bool,
    name: &'static str,
}

/// Planned vertical resize of one replica, accumulated across the CPU and
/// memory passes before being emitted as a single `Update`.
#[derive(Debug, Default, Clone, Copy)]
struct PendingUpdate {
    cpu: Option<f64>,
    mem: Option<f64>,
}

impl HybridEngine {
    fn new(config: HyScaleConfig, consider_memory: bool, name: &'static str) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid HyScaleConfig: {e}");
        }
        HybridEngine {
            gate: RescaleGate::new(config.scale_up_interval, config.scale_down_interval),
            config,
            consider_memory,
            name,
        }
    }

    fn decide(&mut self, view: &ClusterView) -> Vec<ScalingAction> {
        self.decide_traced(view, &mut TraceSink::disabled())
    }

    fn decide_traced(&mut self, view: &ClusterView, trace: &mut TraceSink) -> Vec<ScalingAction> {
        let mut free = FreeMap::from_view(view);
        let mut actions = Vec::new();
        for service in &view.services {
            self.decide_service(view, service, &mut free, &mut actions, trace);
        }
        actions
    }

    fn decide_service(
        &mut self,
        view: &ClusterView,
        service: &ServiceView,
        free: &mut FreeMap,
        actions: &mut Vec<ScalingAction>,
        trace: &mut TraceSink,
    ) {
        let cfg = self.config;
        let denom_cpu = cfg.cpu_target * cfg.headroom;
        let denom_mem = cfg.mem_target * cfg.headroom;

        // --- Step 0: enforce the replica-count envelope -------------------
        let mut replica_count = service.replica_count();
        if replica_count < cfg.min_replicas {
            let spawned = self.spawn_replicas(
                view,
                service,
                cfg.min_replicas - replica_count,
                f64::INFINITY,
                free,
                actions,
            );
            replica_count += spawned;
            // Fault-tolerance restoration is not throttled.
        }
        if replica_count == 0 {
            return;
        }

        // --- Step 1: how many resources are missing overall? --------------
        let sum_cpu_used = service.total_cpu_used().get();
        let sum_cpu_req = service.total_cpu_requested().get();
        let mut missing_cpu = (sum_cpu_used - sum_cpu_req * cfg.cpu_target) / cfg.cpu_target;

        let sum_mem_used = service.total_mem_used().get();
        let sum_mem_limit = service.total_mem_limit().get();
        let mut missing_mem = if self.consider_memory {
            (sum_mem_used - sum_mem_limit * cfg.mem_target) / cfg.mem_target
        } else {
            0.0
        };

        // The trace's per-dimension verdict: sign of the missing total
        // (the reclamation/acquisition trigger), before any rebalancing.
        if trace.is_enabled() {
            let verdict_of = |missing: f64| {
                if missing > 0.0 {
                    Verdict::ScaleUp
                } else if missing < 0.0 {
                    Verdict::ScaleDown
                } else {
                    Verdict::Hold
                }
            };
            trace.emit(
                view.now,
                EventKind::Evaluation {
                    algorithm: self.name,
                    service: service.service.index(),
                    metric: Metric::Cpu,
                    value: missing_cpu,
                    target: cfg.cpu_target,
                    verdict: verdict_of(missing_cpu),
                },
            );
            if self.consider_memory {
                trace.emit(
                    view.now,
                    EventKind::Evaluation {
                        algorithm: self.name,
                        service: service.service.index(),
                        metric: Metric::Mem,
                        value: missing_mem,
                        target: cfg.mem_target,
                        verdict: verdict_of(missing_mem),
                    },
                );
            }
        }

        let mut pending: HashMap<ContainerId, PendingUpdate> = HashMap::new();
        let mut removed: Vec<ContainerId> = Vec::new();

        // --- Step 2: reclamation phase ------------------------------------
        // (run per dimension; removals require the thresholds mutually.)
        if missing_cpu < 0.0 || (self.consider_memory && missing_mem < 0.0) {
            for replica in service.replicas.iter().filter(|r| r.ready) {
                let cpu_desired = replica.cpu_used.get() / denom_cpu;
                let mem_desired = if self.consider_memory {
                    replica.mem_used.get() / denom_mem
                } else {
                    replica.mem_limit.get()
                };

                let cpu_below = cpu_desired < cfg.min_cpu_remove.get();
                // Memory removal threshold: measured against the usage
                // *above the application baseline* — every replica keeps
                // its idle RSS (image + runtime) resident, so comparing
                // raw usage would make removal impossible.
                let mem_above_base = replica.mem_used.get() - service.base_mem.get();
                let mem_below = mem_above_base < cfg.min_mem_remove.get();
                let removable = if self.consider_memory {
                    // CPU+Mem: "requiring the CPU and memory threshold
                    // conditions to be met mutually".
                    cpu_below && mem_below
                } else {
                    cpu_below
                };

                if removable
                    && replica_count.saturating_sub(removed.len()) > cfg.min_replicas
                    && self.gate.allows(service.service, view.now)
                {
                    removed.push(replica.container);
                    actions.push(ScalingAction::Remove {
                        container: replica.container,
                    });
                    // Reclaimed allocations flow back to the node and
                    // count against the missing totals.
                    free.give_cpu(replica.node, replica.cpu_requested.get());
                    free.give_mem(replica.node, replica.mem_limit.get());
                    missing_cpu += replica.cpu_requested.get();
                    if self.consider_memory {
                        missing_mem += replica.mem_limit.get();
                    }
                    continue;
                }

                // Vertical scale-down toward usage/(target·0.9).
                if missing_cpu < 0.0 {
                    let new_cpu = cpu_desired.max(cfg.min_cpu_remove.get());
                    let reclaim = replica.cpu_requested.get() - new_cpu;
                    if reclaim > cfg.min_cpu_change.get() {
                        pending.entry(replica.container).or_default().cpu = Some(new_cpu);
                        free.give_cpu(replica.node, reclaim);
                        missing_cpu += reclaim;
                    }
                }
                if self.consider_memory && missing_mem < 0.0 {
                    // Never reclaim below the application's baseline plus
                    // the removal threshold — a limit under the idle RSS
                    // would force the replica straight into swap.
                    let floor = service.base_mem.get() + cfg.min_mem_remove.get();
                    let new_mem = mem_desired.max(floor);
                    let reclaim = replica.mem_limit.get() - new_mem;
                    if reclaim > cfg.min_mem_change.get() {
                        pending.entry(replica.container).or_default().mem = Some(new_mem);
                        free.give_mem(replica.node, reclaim);
                        missing_mem += reclaim;
                    }
                }
            }
            if !removed.is_empty() {
                self.gate.record_down(service.service, view.now);
                replica_count -= removed.len();
            }
        }

        // --- Step 3: acquisition phase -------------------------------------
        if missing_cpu > 0.0 || (self.consider_memory && missing_mem > 0.0) {
            for replica in service.replicas.iter().filter(|r| r.ready) {
                if removed.contains(&replica.container) {
                    continue;
                }
                if missing_cpu > 0.0 {
                    let required = replica.cpu_used.get() / denom_cpu - replica.cpu_requested.get();
                    if required > cfg.min_cpu_change.get() {
                        let acquired = required.min(free.cpu(replica.node)).max(0.0);
                        if acquired > cfg.min_cpu_change.get() {
                            let new_cpu = replica.cpu_requested.get() + acquired;
                            pending.entry(replica.container).or_default().cpu = Some(new_cpu);
                            free.take_cpu(replica.node, acquired);
                            missing_cpu -= acquired;
                        }
                    }
                }
                if self.consider_memory && missing_mem > 0.0 {
                    let required = replica.mem_used.get() / denom_mem - replica.mem_limit.get();
                    if required > cfg.min_mem_change.get() {
                        let acquired = required.min(free.mem(replica.node)).max(0.0);
                        if acquired > cfg.min_mem_change.get() {
                            let new_mem = replica.mem_limit.get() + acquired;
                            pending.entry(replica.container).or_default().mem = Some(new_mem);
                            free.take_mem(replica.node, acquired);
                            missing_mem -= acquired;
                        }
                    }
                }
            }
        }

        // Emit the accumulated vertical updates (one per replica).
        // Deterministic order: follow the service's replica order.
        for replica in &service.replicas {
            if let Some(update) = pending.get(&replica.container) {
                actions.push(ScalingAction::Update {
                    container: replica.container,
                    cpu: update.cpu.map(Cores),
                    mem: update.mem.map(MemMb),
                });
            }
        }

        // --- Step 4: horizontal scale-out for the uncovered remainder ------
        let still_missing_cpu = missing_cpu > cfg.min_cpu_spawn.get() * 0.5;
        let still_missing_mem = self.consider_memory && missing_mem > cfg.min_mem_change.get();
        if (still_missing_cpu || still_missing_mem)
            && replica_count < cfg.max_replicas
            && self.gate.allows(service.service, view.now)
        {
            let spawned = self.spawn_replicas(
                view,
                service,
                cfg.max_replicas - replica_count,
                missing_cpu.max(0.0),
                free,
                actions,
            );
            if spawned > 0 {
                self.gate.record_up(service.service, view.now);
            }
        }
    }

    /// Spawns up to `max_new` replicas to cover `cpu_needed` cores, on
    /// nodes that do not already host the service and advertise at least
    /// the baseline memory plus the minimum CPU threshold. Returns the
    /// number of spawns planned.
    fn spawn_replicas(
        &self,
        view: &ClusterView,
        service: &ServiceView,
        max_new: usize,
        mut cpu_needed: f64,
        free: &mut FreeMap,
        actions: &mut Vec<ScalingAction>,
    ) -> usize {
        let cfg = self.config;
        let hosting: Vec<NodeId> = service.replicas.iter().map(|r| r.node).collect();
        let mut candidates: Vec<NodeId> = view
            .nodes
            .iter()
            .map(|n| n.node)
            .filter(|n| !hosting.contains(n))
            .collect();
        // Order candidates by the configured placement policy.
        candidates.sort_by(|a, b| {
            cfg.placement
                .prefer(free.cpu(*a), a.index(), free.cpu(*b), b.index())
        });

        let base_mem_floor = service.base_mem.get().max(cfg.min_mem_remove.get());
        let mut spawned = 0;
        for node in candidates {
            if spawned >= max_new || (cpu_needed <= 0.0 && spawned > 0) {
                break;
            }
            let node_cpu = free.cpu(node);
            let node_mem = free.mem(node);
            if node_cpu < cfg.min_cpu_spawn.get() || node_mem < base_mem_floor {
                continue; // paper's placement preconditions
            }
            let cpu_grant = cpu_needed
                .max(cfg.min_cpu_spawn.get())
                .min(node_cpu)
                .min(service.template_cpu.get().max(cfg.min_cpu_spawn.get()));
            let mem_grant = service.template_mem.get().min(node_mem).max(base_mem_floor);
            actions.push(ScalingAction::Spawn {
                service: service.service,
                node,
                cpu: Cores(cpu_grant),
                mem: MemMb(mem_grant),
            });
            free.take_cpu(node, cpu_grant);
            free.take_mem(node, mem_grant);
            cpu_needed -= cpu_grant;
            spawned += 1;
        }
        spawned
    }
}

/// HyScaleCPU: the hybrid autoscaler on CPU usage only (Sec. IV-B.1).
#[derive(Debug)]
pub struct HyScaleCpu {
    engine: HybridEngine,
}

impl HyScaleCpu {
    /// Creates the algorithm.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`HyScaleConfig::validate`]).
    pub fn new(config: HyScaleConfig) -> Self {
        HyScaleCpu {
            engine: HybridEngine::new(config, false, "hybrid"),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HyScaleConfig {
        &self.engine.config
    }
}

impl Autoscaler for HyScaleCpu {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn decide(&mut self, view: &ClusterView) -> Vec<ScalingAction> {
        self.engine.decide(view)
    }

    fn decide_traced(&mut self, view: &ClusterView, trace: &mut TraceSink) -> Vec<ScalingAction> {
        self.engine.decide_traced(view, trace)
    }

    fn gate_entries(&self) -> Vec<(u32, u64)> {
        self.engine.gate.entries()
    }

    fn restore_gate(&mut self, entries: &[(u32, u64)]) {
        self.engine.gate.restore_entries(entries);
    }
}

/// HyScaleCPU+Mem: the hybrid autoscaler on CPU *and* memory
/// (Sec. IV-B.2).
#[derive(Debug)]
pub struct HyScaleCpuMem {
    engine: HybridEngine,
}

impl HyScaleCpuMem {
    /// Creates the algorithm.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`HyScaleConfig::validate`]).
    pub fn new(config: HyScaleConfig) -> Self {
        HyScaleCpuMem {
            engine: HybridEngine::new(config, true, "hybridmem"),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HyScaleConfig {
        &self.engine.config
    }
}

impl Autoscaler for HyScaleCpuMem {
    fn name(&self) -> &'static str {
        "hybridmem"
    }

    fn decide(&mut self, view: &ClusterView) -> Vec<ScalingAction> {
        self.engine.decide(view)
    }

    fn decide_traced(&mut self, view: &ClusterView, trace: &mut TraceSink) -> Vec<ScalingAction> {
        self.engine.decide_traced(view, trace)
    }

    fn gate_entries(&self) -> Vec<(u32, u64)> {
        self.engine.gate.entries()
    }

    fn restore_gate(&mut self, entries: &[(u32, u64)]) {
        self.engine.gate.restore_entries(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::test_support::{node, replica, view_of};
    use hyscale_sim::SimTime;

    fn cpu_algo() -> HyScaleCpu {
        HyScaleCpu::new(HyScaleConfig::default())
    }

    fn mem_algo() -> HyScaleCpuMem {
        HyScaleCpuMem::new(HyScaleConfig::default())
    }

    fn updates(actions: &[ScalingAction]) -> Vec<(ContainerId, Option<f64>, Option<f64>)> {
        actions
            .iter()
            .filter_map(|a| match a {
                ScalingAction::Update {
                    container,
                    cpu,
                    mem,
                } => Some((*container, cpu.map(Cores::get), mem.map(MemMb::get))),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn at_target_no_action() {
        // usage 0.25, requested 0.5, target 0.5 => missing = 0.
        let view = view_of(
            0,
            vec![replica(0, 0, 0.25, 0.5)],
            vec![node(1, 4.0, 8192.0, vec![])],
        );
        assert!(cpu_algo().decide(&view).is_empty());
    }

    #[test]
    fn overload_vertically_acquires_before_spawning() {
        // usage 0.4 of 0.5 requested => missing = (0.4 - 0.25)/0.5 = 0.3.
        // Node 0 has plenty free: the fix must be a vertical update, no
        // spawn.
        let view = view_of(
            0,
            vec![replica(0, 0, 0.4, 0.5)],
            vec![node(0, 3.0, 4096.0, vec![0]), node(1, 4.0, 8192.0, vec![])],
        );
        let actions = cpu_algo().decide(&view);
        assert_eq!(actions.len(), 1);
        let ups = updates(&actions);
        assert_eq!(ups.len(), 1);
        // New request = usage/(0.5*0.9) = 0.888...
        let new_cpu = ups[0].1.unwrap();
        assert!((new_cpu - 0.4 / 0.45).abs() < 1e-9, "new cpu {new_cpu}");
    }

    #[test]
    fn overload_with_full_node_spawns_elsewhere() {
        // Node 0 has nothing free: vertical acquisition impossible, so the
        // remainder must be covered horizontally on node 1 (which does not
        // host the service).
        let view = view_of(
            0,
            vec![replica(0, 0, 0.4, 0.5)],
            vec![node(0, 0.0, 0.0, vec![0]), node(1, 4.0, 8192.0, vec![])],
        );
        let actions = cpu_algo().decide(&view);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            ScalingAction::Spawn { node, cpu, .. } => {
                assert_eq!(*node, NodeId::new(1));
                assert!(cpu.get() >= 0.25);
            }
            other => panic!("expected spawn, got {other}"),
        }
    }

    #[test]
    fn spawn_avoids_nodes_hosting_the_service() {
        // Only node 0 (hosting) has capacity: no spawn possible.
        let view = view_of(
            0,
            vec![replica(0, 0, 0.4, 0.5)],
            vec![node(0, 0.0, 8192.0, vec![0])],
        );
        let actions = cpu_algo().decide(&view);
        assert!(actions.iter().all(|a| !a.is_horizontal()));
    }

    #[test]
    fn spawn_requires_baseline_memory_and_min_cpu() {
        let view_no_mem = view_of(
            0,
            vec![replica(0, 0, 0.4, 0.5)],
            vec![node(0, 0.0, 0.0, vec![0]), node(1, 4.0, 10.0, vec![])], // 10 MB < base 64
        );
        assert!(cpu_algo()
            .decide(&view_no_mem)
            .iter()
            .all(|a| !a.is_horizontal()));

        let view_no_cpu = view_of(
            0,
            vec![replica(0, 0, 0.4, 0.5)],
            vec![node(0, 0.0, 0.0, vec![0]), node(1, 0.1, 8192.0, vec![])], // 0.1 < 0.25
        );
        assert!(cpu_algo()
            .decide(&view_no_cpu)
            .iter()
            .all(|a| !a.is_horizontal()));
    }

    #[test]
    fn underload_reclaims_vertically() {
        // usage 0.09 of 1.0 requested: missing = (0.09-0.5)/0.5 < 0.
        // Desired = 0.09/0.45 = 0.2 -> reclaim 0.8 cores.
        let view = view_of(
            0,
            vec![replica(0, 0, 0.09, 1.0), replica(1, 1, 0.5, 0.55)],
            vec![],
        );
        let actions = cpu_algo().decide(&view);
        let ups = updates(&actions);
        assert!(!ups.is_empty());
        let (_, cpu, _) = ups[0];
        assert!((cpu.unwrap() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn tiny_allocation_is_removed_entirely() {
        // Two replicas so min_replicas=1 allows one removal; replica 0's
        // desired allocation 0.01/0.45 = 0.022 < 0.1 -> remove.
        let view = view_of(
            0,
            vec![replica(0, 0, 0.01, 0.5), replica(1, 1, 0.3, 0.5)],
            vec![],
        );
        let actions = cpu_algo().decide(&view);
        assert!(actions
            .iter()
            .any(|a| matches!(a, ScalingAction::Remove { container } if *container == ContainerId::new(0))));
    }

    #[test]
    fn never_removes_below_min_replicas() {
        let view = view_of(0, vec![replica(0, 0, 0.0, 0.5)], vec![]);
        let actions = cpu_algo().decide(&view);
        assert!(actions
            .iter()
            .all(|a| !matches!(a, ScalingAction::Remove { .. })));
    }

    #[test]
    fn restores_min_replicas_when_below() {
        let config = HyScaleConfig {
            min_replicas: 2,
            ..HyScaleConfig::default()
        };
        let view = view_of(
            0,
            vec![replica(0, 0, 0.2, 0.5)],
            vec![node(1, 4.0, 8192.0, vec![])],
        );
        let actions = HyScaleCpu::new(config).decide(&view);
        assert!(actions
            .iter()
            .any(|a| matches!(a, ScalingAction::Spawn { .. })));
    }

    #[test]
    fn horizontal_gate_throttles_but_vertical_flows() {
        let mut algo = cpu_algo();
        let overloaded = view_of(
            0,
            vec![replica(0, 0, 0.4, 0.5)],
            vec![node(0, 0.0, 0.0, vec![0]), node(1, 4.0, 8192.0, vec![])],
        );
        // First decision spawns.
        assert!(algo.decide(&overloaded).iter().any(|a| a.is_horizontal()));
        // Same timestamp: spawn gated. (No vertical possible on node 0.)
        assert!(algo.decide(&overloaded).is_empty());

        // Vertical scaling remains available during the gate window: give
        // node 0 capacity and check an update is emitted while horizontal
        // is still blocked.
        let mut vertical_ok = view_of(
            0,
            vec![replica(0, 0, 0.4, 0.5)],
            vec![node(0, 3.0, 4096.0, vec![0]), node(1, 4.0, 8192.0, vec![])],
        );
        vertical_ok.now = SimTime::from_secs(101.0); // inside the 3 s up-gate
        let actions = algo.decide(&vertical_ok);
        assert!(!actions.is_empty());
        assert!(actions.iter().all(|a| a.is_vertical()));
    }

    #[test]
    fn memory_variant_raises_limits_under_pressure() {
        // Replica using 240 MB of a 256 MB limit: mem utilization 0.94 >
        // target 0.5. HyScaleCPU+Mem must raise the limit; HyScaleCPU must
        // not touch memory.
        let mut r = replica(0, 0, 0.1, 0.5);
        r.mem_used = MemMb(240.0);
        r.mem_limit = MemMb(256.0);
        r.swapping = true;
        let view = view_of(0, vec![r], vec![node(0, 2.0, 4096.0, vec![0])]);

        let mem_actions = mem_algo().decide(&view);
        let ups = updates(&mem_actions);
        assert_eq!(ups.len(), 1);
        let new_mem = ups[0].2.expect("memory update");
        assert!((new_mem - 240.0 / 0.45).abs() < 1e-6, "new limit {new_mem}");

        let cpu_actions = cpu_algo().decide(&view);
        assert!(updates(&cpu_actions)
            .iter()
            .all(|(_, _, mem)| mem.is_none()));
    }

    #[test]
    fn memory_variant_requires_mutual_thresholds_for_removal() {
        // Replica idle on CPU (would be removable for HyScaleCPU) but
        // holding significant memory: CPU+Mem must keep it.
        let mut idle_cpu_busy_mem = replica(0, 0, 0.01, 0.5);
        idle_cpu_busy_mem.mem_used = MemMb(200.0);
        idle_cpu_busy_mem.mem_limit = MemMb(256.0);
        let other = replica(1, 1, 0.3, 0.5);
        let view = view_of(0, vec![idle_cpu_busy_mem, other], vec![]);

        let cpu_actions = cpu_algo().decide(&view);
        assert!(cpu_actions
            .iter()
            .any(|a| matches!(a, ScalingAction::Remove { container } if *container == ContainerId::new(0))));

        let mem_actions = mem_algo().decide(&view);
        assert!(mem_actions
            .iter()
            .all(|a| !matches!(a, ScalingAction::Remove { .. })));
    }

    #[test]
    fn memory_reclamation_lowers_oversized_limits() {
        // 64 MB used of a 1024 MB limit: missing_mem < 0; desired would be
        // 64/0.45 = 142 MB, above the reclamation floor (base_mem 64 +
        // min_mem_remove 48 = 112 MB).
        let mut r = replica(0, 0, 0.25, 0.5);
        r.mem_used = MemMb(64.0);
        r.mem_limit = MemMb(1024.0);
        let view = view_of(0, vec![r], vec![node(0, 2.0, 4096.0, vec![0])]);
        let actions = mem_algo().decide(&view);
        let ups = updates(&actions);
        assert_eq!(ups.len(), 1);
        let new_mem = ups[0].2.unwrap();
        assert!((new_mem - 64.0 / 0.45).abs() < 1e-6, "new limit {new_mem}");
    }

    #[test]
    fn acquisition_is_bounded_by_node_free_resources() {
        // Node has only 0.1 cores free; required is ~0.39.
        let view = view_of(
            0,
            vec![replica(0, 0, 0.4, 0.5)],
            vec![node(0, 0.1, 4096.0, vec![0])],
        );
        let actions = cpu_algo().decide(&view);
        let ups = updates(&actions);
        assert_eq!(ups.len(), 1);
        let new_cpu = ups[0].1.unwrap();
        assert!((new_cpu - 0.6).abs() < 1e-9, "bounded to +0.1: {new_cpu}");
    }

    #[test]
    fn respects_max_replicas() {
        let config = HyScaleConfig {
            max_replicas: 1,
            ..HyScaleConfig::default()
        };
        let view = view_of(
            0,
            vec![replica(0, 0, 2.0, 0.5)],
            vec![node(0, 0.0, 0.0, vec![0]), node(1, 8.0, 8192.0, vec![])],
        );
        let actions = HyScaleCpu::new(config).decide(&view);
        assert!(actions
            .iter()
            .all(|a| !matches!(a, ScalingAction::Spawn { .. })));
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(cpu_algo().name(), "hybrid");
        assert_eq!(mem_algo().name(), "hybridmem");
        assert_eq!(cpu_algo().config().cpu_target, 0.5);
        assert_eq!(mem_algo().config().mem_target, 0.5);
    }

    #[test]
    fn pack_placement_prefers_fuller_nodes() {
        let config = HyScaleConfig {
            placement: PlacementPolicy::Pack,
            ..HyScaleConfig::default()
        };
        // Node 1 has less free CPU than node 2; both fit. Pack spawns on 1.
        let view = view_of(
            0,
            vec![replica(0, 0, 0.4, 0.5)],
            vec![
                node(0, 0.0, 0.0, vec![0]),
                node(1, 1.0, 8192.0, vec![]),
                node(2, 4.0, 8192.0, vec![]),
            ],
        );
        let actions = HyScaleCpu::new(config).decide(&view);
        match actions.as_slice() {
            [ScalingAction::Spawn { node, .. }] => assert_eq!(*node, NodeId::new(1)),
            other => panic!("expected one spawn, got {other:?}"),
        }
        // Spread (default) picks node 2 instead.
        let actions = cpu_algo().decide(&view);
        match actions.as_slice() {
            [ScalingAction::Spawn { node, .. }] => assert_eq!(*node, NodeId::new(2)),
            other => panic!("expected one spawn, got {other:?}"),
        }
    }

    #[test]
    fn min_replica_restore_is_limited_by_eligible_nodes() {
        // min_replicas 4 but only 2 nodes exist (one hosting): at most one
        // eligible node, so exactly one spawn is planned.
        let config = HyScaleConfig {
            min_replicas: 4,
            ..HyScaleConfig::default()
        };
        let view = view_of(
            0,
            vec![replica(0, 0, 0.2, 0.5)],
            vec![node(0, 2.0, 4096.0, vec![0]), node(1, 4.0, 8192.0, vec![])],
        );
        let actions = HyScaleCpu::new(config).decide(&view);
        let spawns = actions
            .iter()
            .filter(|a| matches!(a, ScalingAction::Spawn { .. }))
            .count();
        assert_eq!(spawns, 1);
    }

    #[test]
    fn idle_stateless_replica_is_removed_by_mem_variant() {
        // CPU idle AND memory at baseline: the mutual condition holds,
        // so HyScaleCPU+Mem removes the spare replica.
        let mut idle = replica(0, 0, 0.01, 0.5);
        idle.mem_used = MemMb(70.0); // base 64 + 6 above baseline < 48 threshold
        let other = replica(1, 1, 0.3, 0.5);
        let view = view_of(0, vec![idle, other], vec![]);
        let actions = mem_algo().decide(&view);
        assert!(actions
            .iter()
            .any(|a| matches!(a, ScalingAction::Remove { container } if *container == ContainerId::new(0))));
    }

    #[test]
    #[should_panic(expected = "invalid HyScaleConfig")]
    fn invalid_config_panics() {
        let _ = HyScaleCpu::new(HyScaleConfig {
            headroom: 0.0,
            ..HyScaleConfig::default()
        });
    }

    #[test]
    fn config_validation_covers_fields() {
        let ok = HyScaleConfig::default();
        assert!(ok.validate().is_ok());
        assert!(HyScaleConfig {
            cpu_target: 0.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(HyScaleConfig {
            mem_target: f64::NAN,
            ..ok
        }
        .validate()
        .is_err());
        assert!(HyScaleConfig {
            headroom: 1.5,
            ..ok
        }
        .validate()
        .is_err());
        assert!(HyScaleConfig {
            min_replicas: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(HyScaleConfig {
            max_replicas: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(HyScaleConfig {
            min_cpu_spawn: Cores(0.0),
            ..ok
        }
        .validate()
        .is_err());
    }
}
