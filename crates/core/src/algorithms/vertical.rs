//! A pure-vertical baseline (ElasticDocker-style, paper Sec. II-A).
//!
//! The paper's related work describes ElasticDocker: an autoscaler that
//! "autonomously scales Docker containers vertically" on CPU and memory
//! and never replicates. It reportedly beat Kubernetes by 37.63% on
//! single-machine-sized workloads — and the paper's critique is exactly
//! what this implementation exposes: once a service outgrows one machine,
//! a vertical-only scaler has nowhere to go ("the cost of machines with
//! sufficient hardware ... far exceeds the cost savings achieved").
//!
//! This baseline reuses HyScale's reclamation/acquisition phases with the
//! horizontal fallback disabled, making the ablation "what does the
//! *hybrid* part of HyScale buy?" a one-line comparison.

use hyscale_cluster::{Cores, MemMb};

use crate::actions::ScalingAction;
use crate::algorithms::{Autoscaler, HyScaleConfig};
use crate::view::ClusterView;

/// Vertical-only autoscaler on CPU and memory (never spawns or removes
/// replicas).
#[derive(Debug)]
pub struct VerticalOnly {
    config: HyScaleConfig,
}

impl VerticalOnly {
    /// Creates the baseline; only the targets, headroom, and anti-churn
    /// fields of the config are used.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`HyScaleConfig::validate`]).
    pub fn new(config: HyScaleConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid HyScaleConfig: {e}");
        }
        VerticalOnly { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &HyScaleConfig {
        &self.config
    }
}

impl Autoscaler for VerticalOnly {
    fn name(&self) -> &'static str {
        "vertical"
    }

    fn decide(&mut self, view: &ClusterView) -> Vec<ScalingAction> {
        let cfg = &self.config;
        let denom_cpu = cfg.cpu_target * cfg.headroom;
        let denom_mem = cfg.mem_target * cfg.headroom;
        let mut actions = Vec::new();

        // Track free resources per node as we plan, like the hybrid does.
        let mut free_cpu: std::collections::HashMap<_, f64> = view
            .nodes
            .iter()
            .map(|n| (n.node, n.free_cpu.get()))
            .collect();
        let mut free_mem: std::collections::HashMap<_, f64> = view
            .nodes
            .iter()
            .map(|n| (n.node, n.free_mem.get()))
            .collect();

        for service in &view.services {
            for replica in service.replicas.iter().filter(|r| r.ready) {
                let cpu_desired =
                    (replica.cpu_used.get() / denom_cpu).max(cfg.min_cpu_remove.get());
                let mem_floor = service.base_mem.get() + cfg.min_mem_remove.get();
                let mem_desired = (replica.mem_used.get() / denom_mem).max(mem_floor);

                let mut new_cpu = None;
                let mut new_mem = None;

                let cpu_delta = cpu_desired - replica.cpu_requested.get();
                if cpu_delta.abs() > cfg.min_cpu_change.get() {
                    let granted = if cpu_delta > 0.0 {
                        let free = free_cpu.get_mut(&replica.node);
                        let available = free.as_deref().copied().unwrap_or(0.0).max(0.0);
                        let take = cpu_delta.min(available);
                        if let Some(f) = free {
                            *f -= take;
                        }
                        take
                    } else {
                        if let Some(f) = free_cpu.get_mut(&replica.node) {
                            *f -= cpu_delta; // negative delta returns capacity
                        }
                        cpu_delta
                    };
                    if granted.abs() > cfg.min_cpu_change.get() {
                        new_cpu = Some(Cores(replica.cpu_requested.get() + granted));
                    }
                }

                let mem_delta = mem_desired - replica.mem_limit.get();
                if mem_delta.abs() > cfg.min_mem_change.get() {
                    let granted = if mem_delta > 0.0 {
                        let free = free_mem.get_mut(&replica.node);
                        let available = free.as_deref().copied().unwrap_or(0.0).max(0.0);
                        let take = mem_delta.min(available);
                        if let Some(f) = free {
                            *f -= take;
                        }
                        take
                    } else {
                        if let Some(f) = free_mem.get_mut(&replica.node) {
                            *f -= mem_delta;
                        }
                        mem_delta
                    };
                    if granted.abs() > cfg.min_mem_change.get() {
                        new_mem = Some(MemMb(replica.mem_limit.get() + granted));
                    }
                }

                if new_cpu.is_some() || new_mem.is_some() {
                    actions.push(ScalingAction::Update {
                        container: replica.container,
                        cpu: new_cpu,
                        mem: new_mem,
                    });
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::test_support::{node, replica, view_of};
    use hyscale_cluster::MemMb;

    fn algo() -> VerticalOnly {
        VerticalOnly::new(HyScaleConfig::default())
    }

    #[test]
    fn never_emits_horizontal_actions() {
        // Wildly overloaded: a hybrid would spawn; vertical-only must not.
        let view = view_of(
            0,
            vec![replica(0, 0, 3.9, 0.5)],
            vec![node(0, 0.1, 64.0, vec![0]), node(1, 4.0, 8192.0, vec![])],
        );
        let actions = algo().decide(&view);
        assert!(actions.iter().all(|a| a.is_vertical()));
    }

    #[test]
    fn acquires_up_to_node_free_cpu() {
        let view = view_of(
            0,
            vec![replica(0, 0, 0.9, 0.5)],
            vec![node(0, 3.5, 4096.0, vec![0])],
        );
        let actions = algo().decide(&view);
        match actions.as_slice() {
            [ScalingAction::Update { cpu: Some(c), .. }] => {
                // desired = 0.9 / 0.45 = 2.0 cores.
                assert!((c.get() - 2.0).abs() < 1e-9, "cpu {c}");
            }
            other => panic!("expected one update, got {other:?}"),
        }
    }

    #[test]
    fn bounded_by_free_capacity() {
        let view = view_of(
            0,
            vec![replica(0, 0, 0.9, 0.5)],
            vec![node(0, 0.3, 4096.0, vec![0])],
        );
        let actions = algo().decide(&view);
        match actions.as_slice() {
            [ScalingAction::Update { cpu: Some(c), .. }] => {
                assert!((c.get() - 0.8).abs() < 1e-9, "bounded to +0.3: {c}");
            }
            other => panic!("expected one update, got {other:?}"),
        }
    }

    #[test]
    fn reclaims_idle_allocations_without_removing() {
        let view = view_of(
            0,
            vec![replica(0, 0, 0.02, 2.0)],
            vec![node(0, 1.0, 4096.0, vec![0])],
        );
        let actions = algo().decide(&view);
        assert_eq!(actions.len(), 1);
        assert!(actions.iter().all(|a| a.is_vertical()));
        match &actions[0] {
            ScalingAction::Update { cpu: Some(c), .. } => {
                // Reclaims toward the floor, never below 0.1.
                assert!(c.get() >= 0.1 && c.get() < 2.0);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn raises_memory_limits_under_pressure() {
        let mut r = replica(0, 0, 0.25, 0.5);
        r.mem_used = MemMb(240.0);
        r.mem_limit = MemMb(256.0);
        let view = view_of(0, vec![r], vec![node(0, 2.0, 4096.0, vec![0])]);
        let actions = algo().decide(&view);
        let raised = actions.iter().any(|a| {
            matches!(
                a,
                ScalingAction::Update { mem: Some(m), .. } if m.get() > 256.0
            )
        });
        assert!(raised, "expected a memory raise, got {actions:?}");
    }

    #[test]
    fn name_and_config() {
        assert_eq!(algo().name(), "vertical");
        assert_eq!(algo().config().cpu_target, 0.5);
    }

    #[test]
    #[should_panic(expected = "invalid HyScaleConfig")]
    fn invalid_config_panics() {
        let _ = VerticalOnly::new(HyScaleConfig {
            headroom: -1.0,
            ..HyScaleConfig::default()
        });
    }
}
