//! Server-side load balancers (paper Sec. V, the LB components).
//!
//! The paper dedicates five cluster nodes to distributed server-side load
//! balancers that proxy clients onto microservice replicas. Here the
//! balancing *logic* is reproduced (the LB nodes' capacity is excluded
//! from the worker pool by the scenario builder, mirroring the paper's
//! 24 = 19 workers + 5 LBs split): each request is routed to the accepting
//! replica with the fewest requests in flight, which is what a
//! least-outstanding-requests proxy does.

use hyscale_cluster::{Cluster, ContainerId, ServiceId};
use hyscale_sim::SimTime;

/// Routes client requests to microservice replicas.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadBalancer;

impl LoadBalancer {
    /// Creates a balancer.
    pub fn new() -> Self {
        LoadBalancer
    }

    /// Picks the replica of `service` to receive a request at `now`:
    /// the accepting replica with the fewest in-flight requests (ties
    /// broken by container id for determinism).
    ///
    /// Returns `None` when no replica is accepting — the request becomes a
    /// *connection failure*, exactly the failure class the paper charges
    /// to the algorithm that left the service without capacity.
    pub fn route(
        &self,
        cluster: &Cluster,
        service: ServiceId,
        now: SimTime,
    ) -> Option<ContainerId> {
        cluster
            .service_replicas(service)
            .into_iter()
            .filter_map(|id| {
                let c = cluster.container(id)?;
                c.accepting(now).then_some((c.in_flight_count(), id))
            })
            .min()
            .map(|(_, id)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_cluster::{ClusterConfig, ContainerSpec, NodeSpec, Request};

    fn setup() -> (Cluster, ServiceId) {
        let mut cl = Cluster::new(ClusterConfig::default());
        cl.add_node(NodeSpec::uniform_worker());
        (cl, ServiceId::new(0))
    }

    fn spec(svc: ServiceId) -> ContainerSpec {
        ContainerSpec::new(svc).with_startup_secs(0.0)
    }

    #[test]
    fn routes_to_least_loaded_replica() {
        let (mut cl, svc) = setup();
        let node = cl.nodes().next().unwrap().id();
        let a = cl.start_container(node, spec(svc), SimTime::ZERO).unwrap();
        let b = cl.start_container(node, spec(svc), SimTime::ZERO).unwrap();
        // Load replica a with two requests.
        for _ in 0..2 {
            cl.admit_request(
                a,
                Request::cpu_bound(svc, SimTime::ZERO, 1.0),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let lb = LoadBalancer::new();
        assert_eq!(lb.route(&cl, svc, SimTime::ZERO), Some(b));
    }

    #[test]
    fn returns_none_without_replicas() {
        let (cl, svc) = setup();
        assert_eq!(LoadBalancer::new().route(&cl, svc, SimTime::ZERO), None);
    }

    #[test]
    fn skips_starting_and_removed_replicas() {
        let (mut cl, svc) = setup();
        let node = cl.nodes().next().unwrap().id();
        let starting = cl
            .start_container(
                node,
                ContainerSpec::new(svc).with_startup_secs(100.0),
                SimTime::ZERO,
            )
            .unwrap();
        let live = cl.start_container(node, spec(svc), SimTime::ZERO).unwrap();
        let lb = LoadBalancer::new();
        assert_eq!(lb.route(&cl, svc, SimTime::from_secs(1.0)), Some(live));
        cl.remove_container(live, SimTime::from_secs(1.0)).unwrap();
        assert_eq!(lb.route(&cl, svc, SimTime::from_secs(1.0)), None);
        // Once the starting replica is ready, it becomes routable.
        assert_eq!(
            lb.route(&cl, svc, SimTime::from_secs(100.0)),
            Some(starting)
        );
    }

    #[test]
    fn skips_full_queues() {
        let (mut cl, svc) = setup();
        let node = cl.nodes().next().unwrap().id();
        let tiny = cl
            .start_container(node, spec(svc).with_queue_cap(1), SimTime::ZERO)
            .unwrap();
        cl.admit_request(
            tiny,
            Request::cpu_bound(svc, SimTime::ZERO, 1.0),
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(LoadBalancer::new().route(&cl, svc, SimTime::ZERO), None);
    }

    #[test]
    fn ties_break_deterministically() {
        let (mut cl, svc) = setup();
        let node = cl.nodes().next().unwrap().id();
        let a = cl.start_container(node, spec(svc), SimTime::ZERO).unwrap();
        let _b = cl.start_container(node, spec(svc), SimTime::ZERO).unwrap();
        // Both idle: lowest container id wins.
        assert_eq!(LoadBalancer::new().route(&cl, svc, SimTime::ZERO), Some(a));
    }
}
