//! Server-side load balancers (paper Sec. V, the LB components).
//!
//! The paper dedicates five cluster nodes to distributed server-side load
//! balancers that proxy clients onto microservice replicas. Here the
//! balancing *logic* is reproduced (the LB nodes' capacity is excluded
//! from the worker pool by the scenario builder, mirroring the paper's
//! 24 = 19 workers + 5 LBs split): each request is routed to the accepting
//! replica with the fewest requests in flight, which is what a
//! least-outstanding-requests proxy does.
//!
//! # Two modes
//!
//! The default balancer is *live*: it reads replica state straight off
//! the cluster, the legacy perfectly-informed behaviour. Under an
//! unreliable control plane ([`crate::ControlPlane`]) the balancer runs
//! in *snapshot* mode instead: it only knows the backend lists from the
//! last Monitor refresh, so replicas that die mid-period are still
//! routed to — the roll-call gap. Per-replica **circuit breakers** close
//! that gap: consecutive connection failures open a replica's breaker
//! (requests stop flowing), and after a seeded cooldown one half-open
//! probe is let through — success closes the breaker, failure re-opens
//! it with a doubled, capped cooldown.

use std::collections::BTreeMap;

use hyscale_cluster::{Cluster, ContainerId, ContainerState, ServiceId};
use hyscale_sim::{SimDuration, SimRng, SimTime, SnapReader, SnapWriter, SnapshotError};
use hyscale_trace::{BreakerTag, EventKind, TraceSink};

/// Per-replica circuit-breaker tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a closed breaker open.
    pub failure_threshold: u32,
    /// First cooldown after opening, seconds.
    pub base_cooldown_secs: f64,
    /// Cooldown ceiling (doubles per failed half-open probe).
    pub max_cooldown_secs: f64,
    /// Seeded jitter applied to each cooldown: the actual cooldown is
    /// uniform in `[base, base × (1 + jitter_frac)]`, decorrelating
    /// probe storms across replicas.
    pub jitter_frac: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            base_cooldown_secs: 2.0,
            max_cooldown_secs: 16.0,
            jitter_frac: 0.1,
        }
    }
}

impl BreakerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason if the threshold is zero, the
    /// cooldown range is not finite-positive or inverted, or the jitter
    /// fraction leaves `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        if self.failure_threshold == 0 {
            return Err("failure_threshold must be >= 1".into());
        }
        if !(self.base_cooldown_secs.is_finite() && self.base_cooldown_secs > 0.0) {
            return Err(format!(
                "base_cooldown_secs must be positive, got {}",
                self.base_cooldown_secs
            ));
        }
        if !(self.max_cooldown_secs.is_finite()
            && self.max_cooldown_secs >= self.base_cooldown_secs)
        {
            return Err(format!(
                "max_cooldown_secs must be >= base_cooldown_secs, got {}",
                self.max_cooldown_secs
            ));
        }
        if !(self.jitter_frac.is_finite() && (0.0..=1.0).contains(&self.jitter_frac)) {
            return Err(format!(
                "jitter_frac must be in [0, 1], got {}",
                self.jitter_frac
            ));
        }
        Ok(())
    }
}

/// One replica's breaker state. Absence from the map means closed with a
/// clean failure streak.
#[derive(Debug, Clone, Copy)]
struct Breaker {
    /// Consecutive failures observed.
    consecutive: u32,
    /// `Some(deadline)` while open: requests are blocked until the
    /// deadline, after which the next request is a half-open probe.
    open_until: Option<SimTime>,
    /// Cooldown to impose if the next probe fails.
    cooldown_secs: f64,
}

/// Routes client requests to microservice replicas.
#[derive(Debug, Clone, Default)]
pub struct LoadBalancer {
    /// `Some` in snapshot mode (control plane enabled), `None` live.
    snapshot: Option<Snapshot>,
    /// Candidate scratch reused across snapshot-mode
    /// [`LoadBalancer::route_cohort`] calls (live mode waterfills off
    /// the cluster's routing index and needs no scratch): cleared,
    /// filled, and sorted per call, never dropped — so the steady state
    /// allocates nothing. Transient: deliberately absent from snapshots.
    cohort_scratch: Vec<(u64, ContainerId, u64)>,
}

/// The snapshot-mode state: stale backend knowledge plus breakers.
#[derive(Debug, Clone)]
struct Snapshot {
    config: BreakerConfig,
    rng: SimRng,
    /// Backend lists as of the last [`LoadBalancer::refresh`], densely
    /// indexed by service index (service ids are dense small integers),
    /// so the per-request path does plain vector loads instead of tree
    /// walks. `None` means the service has never been refreshed —
    /// distinct from `Some(vec![])`, a refreshed service with zero
    /// replicas.
    backends: Vec<Option<Vec<ContainerId>>>,
    breakers: BTreeMap<ContainerId, Breaker>,
    breaker_opens: u64,
}

impl LoadBalancer {
    /// Creates a live-mode balancer (perfect replica knowledge, no
    /// breakers — the legacy behaviour).
    pub fn new() -> Self {
        LoadBalancer::default()
    }

    /// Creates a snapshot-mode balancer with per-replica circuit
    /// breakers; cooldown jitter draws from the given seeded stream.
    pub fn with_breakers(config: BreakerConfig, rng: SimRng) -> Self {
        LoadBalancer {
            snapshot: Some(Snapshot {
                config,
                rng,
                backends: Vec::new(),
                breakers: BTreeMap::new(),
                breaker_opens: 0,
            }),
            cohort_scratch: Vec::new(),
        }
    }

    /// Whether this balancer runs on snapshots and breakers.
    pub fn snapshot_mode(&self) -> bool {
        self.snapshot.is_some()
    }

    /// Breaker open transitions so far (0 in live mode).
    pub fn breaker_opens(&self) -> u64 {
        self.snapshot.as_ref().map_or(0, |s| s.breaker_opens)
    }

    /// Whether `container`'s breaker currently blocks requests.
    pub fn breaker_blocks(&self, container: ContainerId, now: SimTime) -> bool {
        self.snapshot.as_ref().is_some_and(|s| {
            s.breakers
                .get(&container)
                .and_then(|b| b.open_until)
                .is_some_and(|until| now < until)
        })
    }

    /// Refreshes the snapshot backend lists from the cluster (a no-op in
    /// live mode). Call once per Monitor period, after scaling and
    /// recovery have run: this is the balancer "hearing" the control
    /// plane's latest roll call. Breakers of vanished containers are
    /// dropped.
    pub fn refresh(&mut self, cluster: &Cluster, services: &[ServiceId]) {
        let Some(snap) = self.snapshot.as_mut() else {
            return;
        };
        for entry in &mut snap.backends {
            *entry = None;
        }
        let mut known: Vec<ContainerId> = Vec::new();
        for &service in services {
            let replicas = cluster.service_replicas(service);
            known.extend_from_slice(&replicas);
            let idx = service.as_usize();
            if idx >= snap.backends.len() {
                snap.backends.resize_with(idx + 1, || None);
            }
            snap.backends[idx] = Some(replicas);
        }
        known.sort_unstable();
        snap.breakers
            .retain(|id, _| known.binary_search(id).is_ok());
    }

    /// Picks the replica of `service` to receive a request at `now`:
    /// the accepting replica with the fewest in-flight requests (ties
    /// broken by container id for determinism).
    ///
    /// In snapshot mode, candidates come from the last refresh: a
    /// replica that died mid-period is still a candidate (the balancer
    /// doesn't know — it sees an idle backend) until its breaker opens.
    /// Open breakers exclude a replica until their cooldown elapses, at
    /// which point it is let through again as a half-open probe.
    ///
    /// Returns `None` when no replica is accepting — the request becomes a
    /// *connection failure*, exactly the failure class the paper charges
    /// to the algorithm that left the service without capacity.
    pub fn route(
        &self,
        cluster: &Cluster,
        service: ServiceId,
        now: SimTime,
    ) -> Option<ContainerId> {
        let Some(snap) = self.snapshot.as_ref() else {
            // Live mode reads the cluster's incremental routing index:
            // the first accepting entry in (in-flight, id) order is
            // exactly the minimum the old full scan computed.
            return cluster.route_least_loaded(service, now);
        };
        snap.backends
            .get(service.as_usize())?
            .as_ref()?
            .iter()
            .filter_map(|&id| {
                if self.breaker_blocks(id, now) {
                    return None;
                }
                match cluster.container(id) {
                    // The replica is gone (or torn down) but the balancer
                    // hasn't heard: it looks like an idle backend. Routing
                    // to it fails and feeds the breaker.
                    None => Some((0, id)),
                    Some(c) if c.state() == ContainerState::Removed => Some((0, id)),
                    Some(c) => c.accepting(now).then_some((c.in_flight_count(), id)),
                }
            })
            .min()
            .map(|(_, id)| id)
    }

    /// Splits a cohort of `count` identical arrivals across the replicas
    /// of `service`, appending `(replica, members)` shares to `out` and
    /// returning the number of members that found no slot (they become
    /// connection failures).
    ///
    /// The discipline is a deterministic greedy waterfill over the same
    /// preference key as [`LoadBalancer::route`]: candidates are visited
    /// in ascending `(in-flight members, container id)` order and each
    /// receives as many members as its queue headroom allows before the
    /// next candidate is considered. This is where cohorts *diverge* —
    /// members of one arrival batch land on different replicas only when
    /// this split sends them there.
    ///
    /// In snapshot mode candidates come from the last refresh and open
    /// breakers are skipped. A dead-but-unannounced replica looks like an
    /// idle backend with unlimited headroom, so the batch prefers it,
    /// admission fails, and the failure feeds its breaker — the same
    /// roll-call gap the per-request path has.
    pub fn route_cohort(
        &mut self,
        cluster: &Cluster,
        service: ServiceId,
        count: u64,
        now: SimTime,
        out: &mut Vec<(ContainerId, u64)>,
    ) -> u64 {
        if self.snapshot.is_none() {
            // Live mode waterfills straight off the cluster's routing
            // index — already in (in-flight, id) order, so there is no
            // candidate collection and no sort at all.
            return cluster.route_waterfill(service, count, now, out);
        }
        let mut candidates = std::mem::take(&mut self.cohort_scratch);
        candidates.clear();
        let snap = self.snapshot.as_ref().expect("checked above");
        // An unknown service has no candidates: the whole batch falls
        // through the waterfill below as unrouted.
        let backends = snap
            .backends
            .get(service.as_usize())
            .and_then(|e| e.as_deref())
            .unwrap_or(&[]);
        for &id in backends {
            if self.breaker_blocks(id, now) {
                continue;
            }
            match cluster.container(id) {
                None => candidates.push((0, id, u64::MAX)),
                Some(c) if c.state() == ContainerState::Removed => {
                    candidates.push((0, id, u64::MAX));
                }
                Some(c) => {
                    let headroom = c.queue_headroom(now);
                    if headroom > 0 {
                        candidates.push((c.in_flight_members(), id, headroom));
                    }
                }
            }
        }
        candidates.sort_unstable();
        let mut remaining = count;
        for &(_, id, headroom) in &candidates {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(headroom);
            out.push((id, take));
            remaining -= take;
        }
        self.cohort_scratch = candidates;
        remaining
    }

    /// Capacity of the cohort-routing scratch buffer (regression hook:
    /// steady-state routing must not reallocate it).
    pub fn cohort_scratch_capacity(&self) -> usize {
        self.cohort_scratch.capacity()
    }

    /// Records a successfully admitted request (a no-op in live mode).
    /// A success on a half-open probe closes the breaker.
    pub fn record_success(&mut self, container: ContainerId, now: SimTime, trace: &mut TraceSink) {
        let Some(snap) = self.snapshot.as_mut() else {
            return;
        };
        if let Some(breaker) = snap.breakers.get(&container) {
            if breaker.open_until.is_some() {
                trace.emit(
                    now,
                    EventKind::Breaker {
                        state: BreakerTag::Close,
                        container: container.index(),
                        until_us: 0,
                    },
                );
            }
            snap.breakers.remove(&container);
        }
    }

    /// Records a failed admission (a no-op in live mode). Reaching the
    /// consecutive-failure threshold opens the breaker; a failure on a
    /// half-open probe re-opens it with a doubled, capped cooldown.
    pub fn record_failure(&mut self, container: ContainerId, now: SimTime, trace: &mut TraceSink) {
        let Some(snap) = self.snapshot.as_mut() else {
            return;
        };
        let config = snap.config;
        let breaker = snap.breakers.entry(container).or_insert(Breaker {
            consecutive: 0,
            open_until: None,
            cooldown_secs: config.base_cooldown_secs,
        });
        breaker.consecutive += 1;
        let open = match breaker.open_until {
            // Failed half-open probe: double the cooldown and re-open.
            Some(until) if now >= until => {
                breaker.cooldown_secs = (breaker.cooldown_secs * 2.0).min(config.max_cooldown_secs);
                true
            }
            // Still open; nothing should be routed here, but a failure
            // that raced the opening just counts.
            Some(_) => false,
            None => breaker.consecutive >= config.failure_threshold,
        };
        if open {
            let jitter = if config.jitter_frac > 0.0 {
                1.0 + snap.rng.uniform_range(0.0, config.jitter_frac)
            } else {
                1.0
            };
            let until = now + SimDuration::from_secs(breaker.cooldown_secs * jitter);
            breaker.open_until = Some(until);
            snap.breaker_opens += 1;
            trace.emit(
                now,
                EventKind::Breaker {
                    state: BreakerTag::Open,
                    container: container.index(),
                    until_us: until.as_micros(),
                },
            );
        }
    }

    /// Serializes the balancer's mutable state (snapshot support). Live
    /// mode carries no state beyond the mode flag; snapshot mode writes
    /// the RNG stream, stale backend lists, and breaker table. The
    /// breaker configuration is rebuilt from scenario config on restore.
    pub fn snapshot_write(&self, w: &mut SnapWriter) {
        w.put_bool(self.snapshot.is_some());
        let Some(s) = &self.snapshot else {
            return;
        };
        for word in s.rng.state() {
            w.put_u64(word);
        }
        // Present entries in ascending service index — the same order
        // the former BTreeMap serialized in, so bytes are unchanged.
        w.put_usize(s.backends.iter().filter(|e| e.is_some()).count());
        for (idx, entry) in s.backends.iter().enumerate() {
            let Some(list) = entry else { continue };
            w.put_u32(idx as u32);
            w.put_usize(list.len());
            for &c in list {
                w.put_u32(c.index());
            }
        }
        w.put_usize(s.breakers.len());
        for (&container, b) in &s.breakers {
            w.put_u32(container.index());
            w.put_u32(b.consecutive);
            match b.open_until {
                Some(until) => {
                    w.put_bool(true);
                    w.put_u64(until.as_micros());
                }
                None => w.put_bool(false),
            }
            w.put_f64(b.cooldown_secs);
        }
        w.put_u64(s.breaker_opens);
    }

    /// Overlays state captured by [`LoadBalancer::snapshot_write`] onto
    /// this (freshly constructed) balancer. The balancer must already be
    /// in the same mode the snapshot was taken in.
    pub fn snapshot_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let snapshot_mode = r.get_bool()?;
        if snapshot_mode != self.snapshot.is_some() {
            return Err(SnapshotError::Corrupt(
                "load-balancer mode differs between snapshot and scenario".into(),
            ));
        }
        let Some(s) = self.snapshot.as_mut() else {
            return Ok(());
        };
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.get_u64()?;
        }
        s.rng = SimRng::from_state(state);
        s.backends.clear();
        for _ in 0..r.get_usize()? {
            let svc = ServiceId::new(r.get_u32()?);
            let n = r.get_usize()?;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                list.push(ContainerId::new(r.get_u32()?));
            }
            let idx = svc.as_usize();
            if idx >= s.backends.len() {
                s.backends.resize_with(idx + 1, || None);
            }
            s.backends[idx] = Some(list);
        }
        s.breakers.clear();
        for _ in 0..r.get_usize()? {
            let container = ContainerId::new(r.get_u32()?);
            let consecutive = r.get_u32()?;
            let open_until = if r.get_bool()? {
                Some(SimTime::from_micros(r.get_u64()?))
            } else {
                None
            };
            let cooldown_secs = r.get_f64()?;
            s.breakers.insert(
                container,
                Breaker {
                    consecutive,
                    open_until,
                    cooldown_secs,
                },
            );
        }
        s.breaker_opens = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_cluster::{ClusterConfig, ContainerSpec, NodeSpec, Request};

    fn setup() -> (Cluster, ServiceId) {
        let mut cl = Cluster::new(ClusterConfig::default());
        cl.add_node(NodeSpec::uniform_worker());
        (cl, ServiceId::new(0))
    }

    fn spec(svc: ServiceId) -> ContainerSpec {
        ContainerSpec::new(svc).with_startup_secs(0.0)
    }

    #[test]
    fn routes_to_least_loaded_replica() {
        let (mut cl, svc) = setup();
        let node = cl.nodes().next().unwrap().id();
        let a = cl.start_container(node, spec(svc), SimTime::ZERO).unwrap();
        let b = cl.start_container(node, spec(svc), SimTime::ZERO).unwrap();
        // Load replica a with two requests.
        for _ in 0..2 {
            cl.admit_request(
                a,
                Request::cpu_bound(svc, SimTime::ZERO, 1.0),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let lb = LoadBalancer::new();
        assert_eq!(lb.route(&cl, svc, SimTime::ZERO), Some(b));
    }

    #[test]
    fn returns_none_without_replicas() {
        let (cl, svc) = setup();
        assert_eq!(LoadBalancer::new().route(&cl, svc, SimTime::ZERO), None);
    }

    #[test]
    fn skips_starting_and_removed_replicas() {
        let (mut cl, svc) = setup();
        let node = cl.nodes().next().unwrap().id();
        let starting = cl
            .start_container(
                node,
                ContainerSpec::new(svc).with_startup_secs(100.0),
                SimTime::ZERO,
            )
            .unwrap();
        let live = cl.start_container(node, spec(svc), SimTime::ZERO).unwrap();
        let lb = LoadBalancer::new();
        assert_eq!(lb.route(&cl, svc, SimTime::from_secs(1.0)), Some(live));
        cl.remove_container(live, SimTime::from_secs(1.0)).unwrap();
        assert_eq!(lb.route(&cl, svc, SimTime::from_secs(1.0)), None);
        // Once the starting replica is ready, it becomes routable.
        assert_eq!(
            lb.route(&cl, svc, SimTime::from_secs(100.0)),
            Some(starting)
        );
    }

    #[test]
    fn skips_full_queues() {
        let (mut cl, svc) = setup();
        let node = cl.nodes().next().unwrap().id();
        let tiny = cl
            .start_container(node, spec(svc).with_queue_cap(1), SimTime::ZERO)
            .unwrap();
        cl.admit_request(
            tiny,
            Request::cpu_bound(svc, SimTime::ZERO, 1.0),
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(LoadBalancer::new().route(&cl, svc, SimTime::ZERO), None);
    }

    #[test]
    fn ties_break_deterministically() {
        let (mut cl, svc) = setup();
        let node = cl.nodes().next().unwrap().id();
        let a = cl.start_container(node, spec(svc), SimTime::ZERO).unwrap();
        let _b = cl.start_container(node, spec(svc), SimTime::ZERO).unwrap();
        // Both idle: lowest container id wins.
        assert_eq!(LoadBalancer::new().route(&cl, svc, SimTime::ZERO), Some(a));
    }

    #[test]
    fn route_cohort_waterfills_in_preference_order() {
        let (mut cl, svc) = setup();
        let node = cl.nodes().next().unwrap().id();
        let a = cl
            .start_container(node, spec(svc).with_queue_cap(4), SimTime::ZERO)
            .unwrap();
        let b = cl
            .start_container(node, spec(svc).with_queue_cap(8), SimTime::ZERO)
            .unwrap();
        let mut lb = LoadBalancer::new();
        let mut out = Vec::new();
        let unrouted = lb.route_cohort(&cl, svc, 10, SimTime::ZERO, &mut out);
        // Both idle: lowest id fills to its headroom first, spillover next.
        assert_eq!(unrouted, 0);
        assert_eq!(out, vec![(a, 4), (b, 6)]);
    }

    #[test]
    fn route_cohort_reports_overflow_as_unrouted() {
        let (mut cl, svc) = setup();
        let node = cl.nodes().next().unwrap().id();
        for _ in 0..2 {
            cl.start_container(node, spec(svc).with_queue_cap(2), SimTime::ZERO)
                .unwrap();
        }
        let mut lb = LoadBalancer::new();
        let mut out = Vec::new();
        let unrouted = lb.route_cohort(&cl, svc, 10, SimTime::ZERO, &mut out);
        assert_eq!(unrouted, 6);
        assert_eq!(out.iter().map(|&(_, n)| n).sum::<u64>(), 4);
        // No replicas at all: the whole batch bounces.
        let mut none = Vec::new();
        assert_eq!(
            lb.route_cohort(&cl, ServiceId::new(9), 7, SimTime::ZERO, &mut none),
            7
        );
        assert!(none.is_empty());
    }

    #[test]
    fn route_cohort_snapshot_mode_prefers_the_unannounced_dead_replica() {
        let (mut cl, svc) = setup();
        let node = cl.nodes().next().unwrap().id();
        let alive = cl.start_container(node, spec(svc), SimTime::ZERO).unwrap();
        let doomed = cl.start_container(node, spec(svc), SimTime::ZERO).unwrap();
        cl.admit_request(
            alive,
            Request::cpu_bound(svc, SimTime::ZERO, 5.0),
            SimTime::ZERO,
        )
        .unwrap();
        let mut lb = snapshot_lb();
        lb.refresh(&cl, &[svc]);
        cl.remove_container(doomed, SimTime::ZERO).unwrap();
        // The dead replica looks idle with unlimited headroom: the whole
        // batch funnels into it (and will fail admission, feeding its
        // breaker), exactly like the per-request roll-call gap.
        let mut out = Vec::new();
        let unrouted = lb.route_cohort(&cl, svc, 100, SimTime::ZERO, &mut out);
        assert_eq!(unrouted, 0);
        assert_eq!(out, vec![(doomed, 100)]);
    }

    fn snapshot_lb() -> LoadBalancer {
        LoadBalancer::with_breakers(BreakerConfig::default(), SimRng::seed_from(7))
    }

    /// Regression: repeated snapshot-mode cohort routing reuses one
    /// scratch buffer instead of allocating a fresh candidates Vec per
    /// call. (Live mode routes via the cluster's incremental index and
    /// touches no scratch at all — asserted too.)
    #[test]
    fn route_cohort_reuses_scratch_without_reallocating() {
        let (mut cl, svc) = setup();
        let node = cl.nodes().next().unwrap().id();
        for _ in 0..8 {
            cl.start_container(node, spec(svc).with_queue_cap(64), SimTime::ZERO)
                .unwrap();
        }
        let mut lb = snapshot_lb();
        lb.refresh(&cl, &[svc]);
        let mut out = Vec::new();
        // First call sizes the scratch to the candidate count.
        lb.route_cohort(&cl, svc, 100, SimTime::ZERO, &mut out);
        let cap = lb.cohort_scratch_capacity();
        assert!(cap >= 8, "scratch should hold all candidates, cap {cap}");
        for _ in 0..50 {
            out.clear();
            lb.route_cohort(&cl, svc, 100, SimTime::ZERO, &mut out);
        }
        assert_eq!(
            lb.cohort_scratch_capacity(),
            cap,
            "steady-state routing reallocated the scratch"
        );

        let mut live = LoadBalancer::new();
        out.clear();
        live.route_cohort(&cl, svc, 100, SimTime::ZERO, &mut out);
        assert_eq!(
            live.cohort_scratch_capacity(),
            0,
            "live mode should not touch the candidate scratch"
        );
        assert!(!out.is_empty());
    }

    /// Differential gate for the incremental routing index: under random
    /// start/remove/admit churn the index-backed live `route` and
    /// `route_cohort` must match brute-force re-implementations of the
    /// old full-scan-and-sort paths exactly — same pick, same shares in
    /// the same order, same unrouted remainder.
    #[test]
    fn index_routing_matches_brute_force_sort() {
        use hyscale_cluster::{Cohort, MemMb};
        use hyscale_sim::SimDuration;

        let mut rng = SimRng::seed_from(0xD1FF);
        let mut cl = Cluster::new(ClusterConfig::default());
        let n0 = cl.add_node(NodeSpec::uniform_worker());
        let n1 = cl.add_node(NodeSpec::uniform_worker());
        let svc = ServiceId::new(0);
        let mut lb = LoadBalancer::new();
        let mut live: Vec<ContainerId> = Vec::new();
        let dt = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;

        for step in 0..300u32 {
            match rng.uniform_usize(8) {
                0 if live.len() < 10 => {
                    let node = if live.len().is_multiple_of(2) { n0 } else { n1 };
                    let cap = 2 + rng.uniform_usize(14);
                    let c = cl
                        .start_container(node, spec(svc).with_queue_cap(cap), now)
                        .unwrap();
                    live.push(c);
                }
                1 if !live.is_empty() => {
                    let victim = live.swap_remove(rng.uniform_usize(live.len()));
                    cl.remove_container(victim, now).unwrap();
                }
                _ => {}
            }

            // Brute-force route: the pre-index full scan.
            let brute = cl
                .service_replicas(svc)
                .into_iter()
                .filter_map(|id| {
                    let c = cl.container(id)?;
                    c.accepting(now).then_some((c.in_flight_count(), id))
                })
                .min()
                .map(|(_, id)| id);
            assert_eq!(
                lb.route(&cl, svc, now),
                brute,
                "route diverged, step {step}"
            );

            // Brute-force waterfill: the pre-index collect-and-sort.
            let mut candidates: Vec<(u64, ContainerId, u64)> = cl
                .service_replicas(svc)
                .into_iter()
                .filter_map(|id| {
                    let c = cl.container(id)?;
                    let headroom = c.queue_headroom(now);
                    (headroom > 0).then_some((c.in_flight_members(), id, headroom))
                })
                .collect();
            candidates.sort_unstable();
            let count = 1 + rng.uniform_usize(9) as u64;
            let mut expected = Vec::new();
            let mut expected_rem = count;
            for &(_, id, headroom) in &candidates {
                if expected_rem == 0 {
                    break;
                }
                let take = expected_rem.min(headroom);
                expected.push((id, take));
                expected_rem -= take;
            }
            let mut got = Vec::new();
            let got_rem = lb.route_cohort(&cl, svc, count, now, &mut got);
            assert_eq!(got, expected, "waterfill diverged, step {step}");
            assert_eq!(got_rem, expected_rem, "remainder diverged, step {step}");

            // Actually admit the routed shares so load (and the index)
            // evolves, then tick so work completes and frees headroom.
            for &(id, n) in &got {
                let cohort = Cohort::new(svc, now, n, 0.004, MemMb(0.1), 0.0);
                cl.admit_cohort(id, cohort, now).unwrap();
            }
            cl.advance(now, dt);
            now += dt;
        }
    }

    /// All replicas with zero queue headroom: every member bounces as
    /// unrouted and no shares are emitted.
    #[test]
    fn route_cohort_all_zero_headroom_leaves_batch_unrouted() {
        let (mut cl, svc) = setup();
        let node = cl.nodes().next().unwrap().id();
        for _ in 0..3 {
            let c = cl
                .start_container(node, spec(svc).with_queue_cap(1), SimTime::ZERO)
                .unwrap();
            cl.admit_request(
                c,
                Request::cpu_bound(svc, SimTime::ZERO, 1.0),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let mut lb = LoadBalancer::new();
        let mut out = Vec::new();
        let unrouted = lb.route_cohort(&cl, svc, 25, SimTime::ZERO, &mut out);
        assert_eq!(unrouted, 25, "every member should bounce");
        assert!(out.is_empty(), "no shares with zero headroom everywhere");
    }

    #[test]
    fn live_mode_records_are_no_ops() {
        let mut lb = LoadBalancer::new();
        assert!(!lb.snapshot_mode());
        let mut trace = TraceSink::with_capacity(8);
        for _ in 0..10 {
            lb.record_failure(ContainerId::new(0), SimTime::ZERO, &mut trace);
        }
        assert_eq!(lb.breaker_opens(), 0);
        assert!(!lb.breaker_blocks(ContainerId::new(0), SimTime::ZERO));
        assert_eq!(trace.len(), 0);
    }

    #[test]
    fn snapshot_mode_routes_from_refreshed_backends_only() {
        let (mut cl, svc) = setup();
        let node = cl.nodes().next().unwrap().id();
        let a = cl.start_container(node, spec(svc), SimTime::ZERO).unwrap();
        let mut lb = snapshot_lb();
        // No refresh yet: the balancer knows nothing.
        assert_eq!(lb.route(&cl, svc, SimTime::ZERO), None);
        lb.refresh(&cl, &[svc]);
        assert_eq!(lb.route(&cl, svc, SimTime::ZERO), Some(a));
        // A replica spawned after the refresh is invisible until the next.
        let b = cl.start_container(node, spec(svc), SimTime::ZERO).unwrap();
        for _ in 0..2 {
            cl.admit_request(
                a,
                Request::cpu_bound(svc, SimTime::ZERO, 1.0),
                SimTime::ZERO,
            )
            .unwrap();
        }
        assert_eq!(lb.route(&cl, svc, SimTime::ZERO), Some(a));
        lb.refresh(&cl, &[svc]);
        assert_eq!(lb.route(&cl, svc, SimTime::ZERO), Some(b));
    }

    /// Regression for the roll-call gap: a node crashes mid-period, the
    /// balancer keeps routing to the dead replica until its breaker
    /// opens, after which no requests flow to it while the breaker is
    /// open (the bug this PR's circuit breakers fix).
    #[test]
    fn crashed_replica_stops_receiving_requests_once_breaker_opens() {
        let mut cl = Cluster::new(ClusterConfig::default());
        let n0 = cl.add_node(NodeSpec::uniform_worker());
        let n1 = cl.add_node(NodeSpec::uniform_worker());
        let svc = ServiceId::new(0);
        let alive = cl.start_container(n0, spec(svc), SimTime::ZERO).unwrap();
        let doomed = cl.start_container(n1, spec(svc), SimTime::ZERO).unwrap();
        let mut lb = snapshot_lb();
        lb.refresh(&cl, &[svc]);
        let mut trace = TraceSink::with_capacity(16);

        // One request in flight on the live replica, so the (apparently
        // idle) dead one wins the least-loaded comparison.
        cl.admit_request(
            alive,
            Request::cpu_bound(svc, SimTime::ZERO, 5.0),
            SimTime::ZERO,
        )
        .unwrap();

        // Crash at tick T: the balancer's snapshot still lists `doomed`.
        let t = SimTime::from_secs(1.0);
        cl.crash_node(n1, t).unwrap();

        // The dead replica looks idle (in-flight 0), so it keeps winning
        // routes; each admission fails and feeds its breaker.
        let threshold = BreakerConfig::default().failure_threshold;
        for i in 0..threshold {
            let picked = lb.route(&cl, svc, t).unwrap();
            assert_eq!(picked, doomed, "failure {i} routed to the dead replica");
            assert!(cl
                .admit_request(picked, Request::cpu_bound(svc, t, 1.0), t)
                .is_err());
            lb.record_failure(picked, t, &mut trace);
        }
        assert_eq!(lb.breaker_opens(), 1);
        assert!(lb.breaker_blocks(doomed, t));
        assert!(trace.events().any(|e| matches!(
            e.kind,
            EventKind::Breaker {
                state: BreakerTag::Open,
                ..
            }
        )));

        // While open, every request goes to the live replica.
        for _ in 0..5 {
            assert_eq!(lb.route(&cl, svc, t), Some(alive));
        }
    }

    #[test]
    fn failed_probe_reopens_with_doubled_cooldown() {
        let config = BreakerConfig {
            failure_threshold: 1,
            base_cooldown_secs: 2.0,
            max_cooldown_secs: 16.0,
            jitter_frac: 0.0, // exact deadlines for the assertions
        };
        let mut lb = LoadBalancer::with_breakers(config, SimRng::seed_from(1));
        let (mut cl, svc) = setup();
        let node = cl.nodes().next().unwrap().id();
        let dead = cl.start_container(node, spec(svc), SimTime::ZERO).unwrap();
        // Snapshot first, then the replica dies: the roll-call gap keeps
        // it a (blind) candidate.
        lb.refresh(&cl, &[svc]);
        cl.remove_container(dead, SimTime::ZERO).unwrap();
        let mut trace = TraceSink::with_capacity(16);

        // First failure opens (threshold 1) for 2 s.
        lb.record_failure(dead, SimTime::ZERO, &mut trace);
        assert!(lb.breaker_blocks(dead, SimTime::from_secs(1.9)));
        assert!(!lb.breaker_blocks(dead, SimTime::from_secs(2.0)));
        // The half-open probe at 2 s is routable again...
        assert_eq!(lb.route(&cl, svc, SimTime::from_secs(2.0)), Some(dead));
        // ...and its failure re-opens for 4 s.
        lb.record_failure(dead, SimTime::from_secs(2.0), &mut trace);
        assert_eq!(lb.breaker_opens(), 2);
        assert!(lb.breaker_blocks(dead, SimTime::from_secs(5.9)));
        assert!(!lb.breaker_blocks(dead, SimTime::from_secs(6.0)));
    }

    #[test]
    fn successful_probe_closes_the_breaker() {
        let config = BreakerConfig {
            failure_threshold: 1,
            jitter_frac: 0.0,
            ..BreakerConfig::default()
        };
        let mut lb = LoadBalancer::with_breakers(config, SimRng::seed_from(2));
        let (mut cl, svc) = setup();
        let node = cl.nodes().next().unwrap().id();
        let a = cl.start_container(node, spec(svc), SimTime::ZERO).unwrap();
        lb.refresh(&cl, &[svc]);
        let mut trace = TraceSink::with_capacity(16);
        lb.record_failure(a, SimTime::ZERO, &mut trace);
        assert!(lb.breaker_blocks(a, SimTime::ZERO));
        // Probe after the cooldown succeeds: breaker closes.
        lb.record_success(a, SimTime::from_secs(3.0), &mut trace);
        assert!(!lb.breaker_blocks(a, SimTime::from_secs(3.0)));
        assert!(trace.events().any(|e| matches!(
            e.kind,
            EventKind::Breaker {
                state: BreakerTag::Close,
                ..
            }
        )));
        // The streak reset: one more failure re-opens only at threshold.
        lb.record_failure(a, SimTime::from_secs(4.0), &mut trace);
        assert_eq!(lb.breaker_opens(), 2);
    }

    #[test]
    fn refresh_prunes_breakers_of_vanished_containers() {
        let (mut cl, svc) = setup();
        let node = cl.nodes().next().unwrap().id();
        let a = cl.start_container(node, spec(svc), SimTime::ZERO).unwrap();
        let mut lb = snapshot_lb();
        lb.refresh(&cl, &[svc]);
        let mut trace = TraceSink::disabled();
        for _ in 0..3 {
            lb.record_failure(a, SimTime::ZERO, &mut trace);
        }
        assert!(lb.breaker_blocks(a, SimTime::ZERO));
        cl.remove_container(a, SimTime::ZERO).unwrap();
        // service_replicas no longer lists it after removal is complete;
        // refresh drops the dead breaker state.
        lb.refresh(&cl, &[svc]);
        assert!(!lb.breaker_blocks(a, SimTime::ZERO));
    }

    #[test]
    fn breaker_config_validation() {
        assert!(BreakerConfig::default().validate().is_ok());
        assert!(BreakerConfig {
            failure_threshold: 0,
            ..BreakerConfig::default()
        }
        .validate()
        .is_err());
        assert!(BreakerConfig {
            base_cooldown_secs: 0.0,
            ..BreakerConfig::default()
        }
        .validate()
        .is_err());
        assert!(BreakerConfig {
            base_cooldown_secs: 10.0,
            max_cooldown_secs: 5.0,
            ..BreakerConfig::default()
        }
        .validate()
        .is_err());
        assert!(BreakerConfig {
            jitter_frac: 2.0,
            ..BreakerConfig::default()
        }
        .validate()
        .is_err());
    }
}
