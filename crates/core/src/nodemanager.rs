//! Node Managers (paper Sec. V-B).
//!
//! One NM runs on each node. It polls `docker stats` for every container
//! on its machine, aggregates the usage, checks liveness, and applies the
//! `docker update` commands the Monitor sends. NMs deliberately hold *no*
//! decision-making logic — the paper found that letting NMs scale locally
//! fights the Monitor and causes allocation oscillations, so all policy
//! lives centrally.

use hyscale_cluster::{Cluster, ClusterError, ContainerState, NodeId, NodeUsage};
use hyscale_sim::SimTime;

/// The per-node agent: usage reporting and container liveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeManager {
    node: NodeId,
}

impl NodeManager {
    /// Creates the manager for `node`.
    pub fn new(node: NodeId) -> Self {
        NodeManager { node }
    }

    /// The node this manager runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Collects the usage report for the elapsed period ("docker stats"
    /// for every container on the node) and resets the accounting window.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`] if the node disappeared.
    pub fn report(&self, cluster: &mut Cluster) -> Result<NodeUsage, ClusterError> {
        cluster.node_usage_and_reset(self.node)
    }

    /// Checks microservice liveness: returns the containers on this node
    /// that are live (serving or starting) at `now`.
    pub fn live_containers(
        &self,
        cluster: &Cluster,
        now: SimTime,
    ) -> Vec<hyscale_cluster::ContainerId> {
        cluster
            .node(self.node)
            .map(|n| {
                n.containers()
                    .iter()
                    .copied()
                    .filter(|&id| {
                        cluster
                            .container(id)
                            .is_some_and(|c| c.state() != ContainerState::Removed || c.live(now))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_cluster::{ClusterConfig, ContainerSpec, NodeSpec, ServiceId};

    #[test]
    fn reports_usage_for_own_node_only() {
        let mut cl = Cluster::new(ClusterConfig::default());
        let n0 = cl.add_node(NodeSpec::uniform_worker());
        let n1 = cl.add_node(NodeSpec::uniform_worker());
        cl.start_container(
            n0,
            ContainerSpec::new(ServiceId::new(0)).with_startup_secs(0.0),
            SimTime::ZERO,
        )
        .unwrap();

        let nm0 = NodeManager::new(n0);
        let nm1 = NodeManager::new(n1);
        assert_eq!(nm0.node(), n0);
        let r0 = nm0.report(&mut cl).unwrap();
        let r1 = nm1.report(&mut cl).unwrap();
        assert_eq!(r0.containers.len(), 1);
        assert_eq!(r1.containers.len(), 0);
    }

    #[test]
    fn liveness_includes_live_excludes_removed() {
        let mut cl = Cluster::new(ClusterConfig::default());
        let n0 = cl.add_node(NodeSpec::uniform_worker());
        let ctr = cl
            .start_container(
                n0,
                ContainerSpec::new(ServiceId::new(0)).with_startup_secs(0.0),
                SimTime::ZERO,
            )
            .unwrap();
        let nm = NodeManager::new(n0);
        assert_eq!(nm.live_containers(&cl, SimTime::ZERO), vec![ctr]);
        cl.remove_container(ctr, SimTime::ZERO).unwrap();
        assert!(nm.live_containers(&cl, SimTime::ZERO).is_empty());
    }

    #[test]
    fn unknown_node_errors() {
        let mut cl = Cluster::new(ClusterConfig::default());
        let nm = NodeManager::new(NodeId::new(7));
        assert!(nm.report(&mut cl).is_err());
        assert!(nm.live_containers(&cl, SimTime::ZERO).is_empty());
    }
}
