//! Scenario-level resilience configuration and run counters: retry
//! defaults, end-to-end deadline budgets, per-service retry budgets, and
//! overload shedding watermarks.
//!
//! The mechanisms live in the graph tracker and the driver; this module
//! is the knob panel ([`ResilienceConfig`]) and the scoreboard
//! ([`ResilienceStats`]). Everything here is deterministic: backoff
//! jitter draws from a dedicated RNG split in the serial phase, budget
//! tokens are plain arithmetic over completion counts, and shedding
//! reads cluster state that is identical at any worker count.

use hyscale_workload::RetryPolicy;

/// Scenario-wide resilience settings. `Default` (and
/// [`ResilienceConfig::disabled`]) turns the whole layer off, in which
/// case the run is bit-identical to a build without it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Master switch. When false every other field is ignored and no
    /// resilience state is tracked, journaled, or snapshotted.
    pub enabled: bool,
    /// Retry policy for hops whose [`GraphEdge`](hyscale_workload::GraphEdge)
    /// carries no override, and for entry-point admissions (depth 0).
    pub default_policy: RetryPolicy,
    /// End-to-end deadline budget per root, in seconds: a root arriving
    /// at `t` must fully resolve by `t + root_budget_secs`. Hops inherit
    /// `min(remaining budget, service timeout)`, and a retry whose
    /// backoff lands past the deadline fails as `DeadlineExceeded`.
    /// Non-finite or non-positive = unlimited.
    pub root_budget_secs: f64,
    /// Retry budget as a percentage of successful completions: each
    /// completed member adds `budget_pct / 100` tokens to its service's
    /// bucket and each retried member costs one token, so sustained
    /// retries cannot exceed `budget_pct`% of goodput. `0.0` = no budget
    /// (unlimited retries — the retry-storm failure mode).
    pub budget_pct: f64,
    /// Initial tokens in, and cap on, each service's budget bucket
    /// (lets cold services retry before their first completions).
    pub budget_floor: f64,
    /// Overload shedding: when a service's in-flight member count is at
    /// or above this watermark, new client roots for that entry point
    /// are shed (dropped unissued, counted as shed, not failed).
    /// `0` = shedding off.
    pub shed_watermark: u64,
}

impl ResilienceConfig {
    /// The layer fully off (the legacy all-or-nothing failure model).
    pub fn disabled() -> Self {
        ResilienceConfig {
            enabled: false,
            default_policy: RetryPolicy::off(),
            root_budget_secs: 0.0,
            budget_pct: 0.0,
            budget_floor: 0.0,
            shed_watermark: 0,
        }
    }

    /// Enables the layer with the given default retry policy; budgets
    /// and shedding stay off until set.
    pub fn with_policy(policy: RetryPolicy) -> Self {
        ResilienceConfig {
            enabled: true,
            default_policy: policy,
            ..ResilienceConfig::disabled()
        }
    }

    /// Builder-style end-to-end root deadline budget.
    pub fn with_root_budget_secs(mut self, secs: f64) -> Self {
        self.root_budget_secs = secs;
        self
    }

    /// Builder-style retry budget (percent of successes) and bucket
    /// floor/cap.
    pub fn with_budget(mut self, pct: f64, floor: f64) -> Self {
        self.budget_pct = pct;
        self.budget_floor = floor;
        self
    }

    /// Builder-style shedding watermark (in-flight members per service).
    pub fn with_shed_watermark(mut self, watermark: u64) -> Self {
        self.shed_watermark = watermark;
        self
    }

    /// Whether the root deadline budget is actually bounding.
    pub fn has_root_budget(&self) -> bool {
        self.root_budget_secs.is_finite() && self.root_budget_secs > 0.0
    }

    /// Whether the retry token budget is actually bounding.
    pub fn has_retry_budget(&self) -> bool {
        self.budget_pct > 0.0
    }

    /// Validates the configuration (only when enabled; a disabled layer
    /// is valid regardless of the ignored fields).
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason on the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        self.default_policy
            .validate()
            .map_err(|e| format!("default_policy: {e}"))?;
        if !self.root_budget_secs.is_finite() && self.root_budget_secs != f64::INFINITY {
            return Err(format!(
                "root_budget_secs must be finite or +inf, got {}",
                self.root_budget_secs
            ));
        }
        if self.root_budget_secs.is_finite() && self.root_budget_secs < 0.0 {
            return Err(format!(
                "root_budget_secs must be non-negative, got {}",
                self.root_budget_secs
            ));
        }
        if !(self.budget_pct.is_finite() && self.budget_pct >= 0.0) {
            return Err(format!(
                "budget_pct must be finite and non-negative, got {}",
                self.budget_pct
            ));
        }
        if !(self.budget_floor.is_finite() && self.budget_floor >= 0.0) {
            return Err(format!(
                "budget_floor must be finite and non-negative, got {}",
                self.budget_floor
            ));
        }
        if self.has_retry_budget() && self.budget_floor == 0.0 {
            return Err("budget_floor must be positive when budget_pct is set \
                 (a zero-capacity bucket can never admit a retry)"
                .into());
        }
        Ok(())
    }
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig::disabled()
    }
}

/// Run counters for the resilience layer, reported in
/// `RunReport::resilience` (all zero when the layer is disabled).
///
/// `goodput_members` vs `wasted_members` is the headline split: member
/// completions whose root ultimately succeeded vs member completions
/// whose root still failed — the work a retry storm burns for nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Retry hops re-queued (one per aggregate failure record retried).
    pub retries: u64,
    /// Members re-issued across all retries.
    pub retried_members: u64,
    /// Aggregate failures that wanted a retry but found the service's
    /// token bucket empty (the root failed instead).
    pub budget_exhausted: u64,
    /// Aggregate failures whose backoff landed past the root deadline
    /// (the root failed instead).
    pub deadline_exceeded: u64,
    /// Client roots shed at admission by the overload watermark.
    pub shed_roots: u64,
    /// Members those shed roots would have carried.
    pub shed_members: u64,
    /// Member completions under roots that ultimately succeeded.
    pub goodput_members: u64,
    /// Member completions under roots that ultimately failed.
    pub wasted_members: u64,
}

impl ResilienceStats {
    /// Fraction of all completed member work that was goodput, in
    /// percent; 100 when nothing completed.
    pub fn goodput_pct(&self) -> f64 {
        let total = self.goodput_members + self.wasted_members;
        if total == 0 {
            100.0
        } else {
            self.goodput_members as f64 / total as f64 * 100.0
        }
    }
}

impl std::ops::AddAssign for ResilienceStats {
    fn add_assign(&mut self, rhs: ResilienceStats) {
        self.retries += rhs.retries;
        self.retried_members += rhs.retried_members;
        self.budget_exhausted += rhs.budget_exhausted;
        self.deadline_exceeded += rhs.deadline_exceeded;
        self.shed_roots += rhs.shed_roots;
        self.shed_members += rhs.shed_members;
        self.goodput_members += rhs.goodput_members;
        self.wasted_members += rhs.wasted_members;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_is_always_valid() {
        let mut cfg = ResilienceConfig::disabled();
        cfg.budget_pct = f64::NAN;
        cfg.root_budget_secs = -5.0;
        assert!(cfg.validate().is_ok());
        assert_eq!(ResilienceConfig::default(), ResilienceConfig::disabled());
    }

    #[test]
    fn enabled_config_validates_fields() {
        let base = ResilienceConfig::with_policy(RetryPolicy::standard());
        assert!(base.validate().is_ok());
        assert!(base
            .with_root_budget_secs(30.0)
            .with_budget(10.0, 50.0)
            .with_shed_watermark(1000)
            .validate()
            .is_ok());
        assert!(base
            .with_budget(-1.0, 10.0)
            .validate()
            .unwrap_err()
            .contains("budget_pct"));
        assert!(base
            .with_budget(10.0, 0.0)
            .validate()
            .unwrap_err()
            .contains("budget_floor"));
        assert!(base
            .with_root_budget_secs(-1.0)
            .validate()
            .unwrap_err()
            .contains("root_budget_secs"));
        let mut bad_policy = base;
        bad_policy.default_policy.jitter_frac = 2.0;
        assert!(bad_policy
            .validate()
            .unwrap_err()
            .contains("default_policy"));
    }

    #[test]
    fn budget_gates_report_state() {
        let cfg = ResilienceConfig::with_policy(RetryPolicy::standard());
        assert!(!cfg.has_root_budget());
        assert!(!cfg.has_retry_budget());
        assert!(cfg.with_root_budget_secs(10.0).has_root_budget());
        assert!(cfg.with_budget(5.0, 20.0).has_retry_budget());
        assert!(!cfg.with_root_budget_secs(f64::INFINITY).has_root_budget());
    }

    #[test]
    fn stats_accumulate_and_report_goodput() {
        let mut a = ResilienceStats {
            retries: 1,
            retried_members: 2,
            budget_exhausted: 3,
            deadline_exceeded: 4,
            shed_roots: 5,
            shed_members: 6,
            goodput_members: 30,
            wasted_members: 10,
        };
        a += a;
        assert_eq!(a.retries, 2);
        assert_eq!(a.shed_members, 12);
        assert_eq!(a.goodput_pct(), 75.0);
        assert_eq!(ResilienceStats::default().goodput_pct(), 100.0);
    }
}
