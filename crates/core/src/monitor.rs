//! The Monitor: the platform's central arbiter (paper Sec. V-C).
//!
//! Every scaling period the Monitor gathers usage statistics from all
//! Node Managers, assembles the [`ClusterView`], hands it to the
//! configured [`Autoscaler`] module, and administers the returned scaling
//! actions — `docker update` for vertical decisions, container
//! creation/removal for horizontal ones. Its centralized view is what
//! lets it make globally consistent decisions; NMs never scale on their
//! own (see [`crate::NodeManager`]).

use std::collections::HashMap;

use hyscale_cluster::{
    Cluster, ContainerId, ContainerSpec, ContainerState, ContainerUsage, FailedRequest, NodeId,
    ServiceId,
};
use hyscale_sim::{SimTime, SnapReader, SnapWriter, SnapshotError};
use hyscale_trace::{ActionTag, EventKind, TraceSink};

use crate::actions::ScalingAction;
use crate::algorithms::{veto_stale_reductions, Autoscaler};
use crate::controlplane::{ControlPlane, NEVER_REPORTED};
use crate::nodemanager::NodeManager;
use crate::view::{ClusterView, NodeView, ReplicaView, ServiceView};

/// What one Monitor period did.
#[derive(Debug)]
pub struct MonitorReport {
    /// The snapshot the algorithm saw.
    pub view: ClusterView,
    /// Actions the algorithm requested and the Monitor applied
    /// successfully.
    pub applied: Vec<ScalingAction>,
    /// Requests aborted by replica removals this period.
    pub removal_failures: Vec<FailedRequest>,
    /// Replicas that disappeared since the last period *without* a
    /// Monitor removal decision — they died underneath the platform
    /// (node crash, OOM-kill) and are candidates for recovery respawn.
    pub dead_replicas: Vec<(ServiceId, ContainerId)>,
    /// Whether this period ran in cluster-wide safe mode: too few nodes
    /// had fresh reports, so all scaling (including actuation retries)
    /// was frozen. Recovery is unaffected — it runs driver-side.
    pub safe_mode: bool,
}

/// The central arbiter: collects, decides (via the plugged-in algorithm),
/// and administers.
pub struct Monitor {
    algorithm: Box<dyn Autoscaler>,
    node_managers: Vec<NodeManager>,
    /// Template container spec per service, used to materialize spawns.
    templates: HashMap<ServiceId, ContainerSpec>,
    /// Nodes whose NodeManager stat reports are currently muted (fault
    /// injection); their containers fall back to stale usage figures.
    /// Kept sorted so [`Monitor::collect`] can binary-search instead of
    /// scanning per node.
    stat_outages: Vec<NodeId>,
    /// Replicas alive at the end of the previous period, sorted. The gap
    /// between this and the next period's roll call is how the Monitor
    /// notices replicas that died without being told.
    expected_replicas: Vec<(ServiceId, ContainerId)>,
    /// The degraded control plane all reports and actuations flow
    /// through; `None` keeps the legacy perfectly-reliable loop.
    control_plane: Option<ControlPlane>,
    /// Whether the previous period ran in safe mode, for emitting
    /// entry/exit transitions exactly once.
    in_safe_mode: bool,
    /// Usage samples from the current collection, densely indexed by
    /// container id. Reused across periods (cleared, refilled) so the
    /// steady-state collect path neither hashes nor allocates.
    /// Transient: deliberately absent from snapshots.
    usage_scratch: Vec<Option<ContainerUsage>>,
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("algorithm", &self.algorithm.name())
            .field("node_managers", &self.node_managers.len())
            .field("services", &self.templates.len())
            .finish()
    }
}

impl Monitor {
    /// Creates a Monitor driving `algorithm`, managing one [`NodeManager`]
    /// per node currently in `cluster`, with the given per-service replica
    /// templates.
    pub fn new(
        algorithm: Box<dyn Autoscaler>,
        cluster: &Cluster,
        templates: HashMap<ServiceId, ContainerSpec>,
    ) -> Self {
        let mut monitor = Monitor {
            algorithm,
            node_managers: cluster.nodes().map(|n| NodeManager::new(n.id())).collect(),
            templates,
            stat_outages: Vec::new(),
            expected_replicas: Vec::new(),
            control_plane: None,
            in_safe_mode: false,
            usage_scratch: Vec::new(),
        };
        monitor.expected_replicas = monitor.roll_call(cluster);
        monitor
    }

    /// The plugged-in algorithm's report name.
    pub fn algorithm_name(&self) -> &'static str {
        self.algorithm.name()
    }

    /// Routes all Node Manager reports and scaling actuations through
    /// the given (degraded) control plane from now on.
    pub fn set_control_plane(&mut self, control_plane: ControlPlane) {
        self.control_plane = Some(control_plane);
    }

    /// The control plane, if one is installed.
    pub fn control_plane(&self) -> Option<&ControlPlane> {
        self.control_plane.as_ref()
    }

    /// Tells the Monitor which nodes' NodeManager reports are currently
    /// unavailable (fault injection). Their containers keep their last
    /// known (stale) usage in the next [`Monitor::collect`].
    pub fn set_stat_outages(&mut self, mut nodes: Vec<NodeId>) {
        nodes.sort_unstable();
        self.stat_outages = nodes;
    }

    /// Serializes the Monitor's mutable state: the algorithm's rescale
    /// gate, the expected-replica roll call, the safe-mode flag, and the
    /// control plane if installed (snapshot support). Node managers and
    /// stat outages are transient — rebuilt at the top of every period.
    pub fn snapshot_write(&self, w: &mut SnapWriter) {
        let gate = self.algorithm.gate_entries();
        w.put_usize(gate.len());
        for (svc, until) in gate {
            w.put_u32(svc);
            w.put_u64(until);
        }
        w.put_usize(self.expected_replicas.len());
        for &(svc, container) in &self.expected_replicas {
            w.put_u32(svc.index());
            w.put_u32(container.index());
        }
        w.put_bool(self.in_safe_mode);
        w.put_bool(self.control_plane.is_some());
        if let Some(cp) = &self.control_plane {
            cp.snapshot_write(w);
        }
    }

    /// Overlays state captured by [`Monitor::snapshot_write`] onto this
    /// (freshly constructed) Monitor. The algorithm and control plane
    /// must already be installed per scenario config.
    pub fn snapshot_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let n = r.get_usize()?;
        let mut gate = Vec::with_capacity(n);
        for _ in 0..n {
            let svc = r.get_u32()?;
            let until = r.get_u64()?;
            gate.push((svc, until));
        }
        self.algorithm.restore_gate(&gate);
        self.expected_replicas.clear();
        for _ in 0..r.get_usize()? {
            let svc = ServiceId::new(r.get_u32()?);
            let container = ContainerId::new(r.get_u32()?);
            self.expected_replicas.push((svc, container));
        }
        self.in_safe_mode = r.get_bool()?;
        let has_cp = r.get_bool()?;
        if has_cp != self.control_plane.is_some() {
            return Err(SnapshotError::Corrupt(
                "control-plane presence differs between snapshot and scenario".into(),
            ));
        }
        if let Some(cp) = self.control_plane.as_mut() {
            cp.snapshot_restore(r)?;
        }
        Ok(())
    }

    /// The managed replicas currently alive in `cluster`, sorted.
    fn roll_call(&self, cluster: &Cluster) -> Vec<(ServiceId, ContainerId)> {
        let mut alive: Vec<(ServiceId, ContainerId)> = cluster
            .containers()
            .filter(|c| {
                !c.spec().antagonist
                    && c.state() != ContainerState::Removed
                    && self.templates.contains_key(&c.service())
            })
            .map(|c| (c.service(), c.id()))
            .collect();
        alive.sort_unstable();
        alive
    }

    /// Runs one scaling period: collect → decide → administer.
    ///
    /// `period_secs` is the elapsed time the usage averages cover.
    pub fn run_period(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        period_secs: f64,
    ) -> MonitorReport {
        self.run_period_traced(cluster, now, period_secs, &mut TraceSink::disabled())
    }

    /// Like [`Monitor::run_period`], but records the period's observable
    /// reasoning into `trace`: replicas found dead at roll call, the
    /// algorithm's metric evaluations, and one
    /// [`EventKind::Decision`] per action that actually took effect.
    pub fn run_period_traced(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        period_secs: f64,
        trace: &mut TraceSink,
    ) -> MonitorReport {
        // Nodes can be commissioned or decommissioned at runtime (paper
        // future work); keep one Node Manager per live machine.
        self.node_managers = cluster.nodes().map(|n| NodeManager::new(n.id())).collect();

        // Roll call: replicas the Monitor expected from last period that
        // no longer answer died without a scaling decision.
        let alive = self.roll_call(cluster);
        let dead_replicas: Vec<(ServiceId, ContainerId)> = self
            .expected_replicas
            .iter()
            .filter(|expected| alive.binary_search(expected).is_err())
            .copied()
            .collect();
        for &(service, container) in &dead_replicas {
            trace.emit(
                now,
                EventKind::ReplicaDeath {
                    service: service.index(),
                    container: container.index(),
                },
            );
        }

        let view = if self.control_plane.is_some() {
            self.collect_degraded(cluster, now, period_secs, trace)
        } else {
            self.collect(cluster, now, period_secs)
        };

        // Safe-mode quorum check: with too few fresh node reports the
        // Monitor cannot trust its picture of the cluster, so it freezes
        // all scaling (decisions *and* actuation retries). Recovery is
        // unaffected — it runs driver-side off the roll call above.
        let mut safe_mode = false;
        if let Some(cp) = self.control_plane.as_mut() {
            let budget = cp.config().staleness_budget_ticks;
            let quorum = cp.config().quorum_fraction;
            let total = self.node_managers.len();
            let fresh = self
                .node_managers
                .iter()
                .filter(|nm| cp.node_age(nm.node()) <= budget)
                .count();
            let required = (quorum * total as f64).ceil() as usize;
            safe_mode = quorum > 0.0 && total > 0 && fresh < required;
            if safe_mode {
                cp.stats.safe_mode_periods += 1;
            }
            if safe_mode != self.in_safe_mode {
                trace.emit(
                    now,
                    EventKind::SafeMode {
                        entered: safe_mode,
                        fresh_nodes: fresh as u32,
                        total_nodes: total as u32,
                    },
                );
                self.in_safe_mode = safe_mode;
            }
        }

        let mut applied = Vec::new();
        let mut removal_failures = Vec::new();

        if !safe_mode {
            // Failed actuations whose retry window arrived execute first,
            // in idempotency-key (i.e. submission) order.
            let retries = match self.control_plane.as_mut() {
                Some(cp) => cp.due_retries(now, trace),
                None => Vec::new(),
            };
            for action in retries {
                if self.apply(cluster, now, action, &mut removal_failures) {
                    if trace.is_enabled() {
                        let kind = decision_event(cluster, self.algorithm.name(), &action);
                        trace.emit(now, kind);
                    }
                    applied.push(action);
                }
            }

            let actions = self.algorithm.decide_traced(&view, trace);
            // Downstream of *every* algorithm: never scale in on stale
            // data (a no-op when all samples are fresh).
            let (actions, vetoes) =
                veto_stale_reductions(&view, self.algorithm.name(), actions, trace);
            if let Some(cp) = self.control_plane.as_mut() {
                cp.stats.stale_vetoes += vetoes;
            }
            for action in actions {
                let execute = match self.control_plane.as_mut() {
                    Some(cp) => cp.submit(action, now, trace).executed(),
                    None => true,
                };
                if execute && self.apply(cluster, now, action, &mut removal_failures) {
                    if trace.is_enabled() {
                        let kind = decision_event(cluster, self.algorithm.name(), &action);
                        trace.emit(now, kind);
                    }
                    applied.push(action);
                }
            }
        }

        // Snapshot *after* acting so the Monitor's own removals and spawns
        // are part of next period's expectation.
        self.expected_replicas = self.roll_call(cluster);
        MonitorReport {
            view,
            applied,
            removal_failures,
            dead_replicas,
            safe_mode,
        }
    }

    /// Collects the periodic snapshot without acting (exposed for tests
    /// and for recording utilization time series).
    pub fn collect(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        period_secs: f64,
    ) -> ClusterView {
        // Usage per container, gathered node by node (what the NMs
        // report) into a dense id-indexed scratch reused across periods —
        // no hashing, no steady-state allocation. Muted nodes (stat
        // outage) contribute nothing; their containers fall back to the
        // stale defaults below. Idle (parked) nodes cannot be skipped
        // outright — their base-tax usage samples are still part of the
        // view — but sampling them replays their deferred idle ticks
        // lazily inside `node_usage_and_reset`, not per tick.
        for entry in &mut self.usage_scratch {
            *entry = None;
        }
        for nm in &self.node_managers {
            // `stat_outages` is kept sorted by `set_stat_outages`, so the
            // muted check is O(log outages) instead of a linear scan per
            // node.
            if self.stat_outages.binary_search(&nm.node()).is_ok() {
                continue;
            }
            if let Ok(report) = nm.report(cluster) {
                for sample in report.containers {
                    let idx = sample.container.as_usize();
                    if idx >= self.usage_scratch.len() {
                        self.usage_scratch.resize_with(idx + 1, || None);
                    }
                    self.usage_scratch[idx] = Some(sample);
                }
            }
        }

        // Group live serving containers by service.
        let mut services: Vec<ServiceView> = self
            .templates
            .iter()
            .map(|(&service, template)| ServiceView {
                service,
                replicas: Vec::new(),
                template_cpu: template.cpu_request,
                template_mem: template.mem_limit,
                base_mem: template.base_mem,
            })
            .collect();
        services.sort_by_key(|s| s.service);

        for container in cluster.containers() {
            if container.spec().antagonist || container.state() == ContainerState::Removed {
                continue;
            }
            let Some(service_view) = services
                .iter_mut()
                .find(|s| s.service == container.service())
            else {
                continue; // a container of a service the Monitor doesn't manage
            };
            let usage = self
                .usage_scratch
                .get(container.id().as_usize())
                .and_then(Option::as_ref);
            service_view.replicas.push(ReplicaView {
                container: container.id(),
                node: container.node(),
                cpu_used: usage.map(|u| u.cpu_used).unwrap_or_default(),
                cpu_requested: container.spec().cpu_request,
                mem_used: usage
                    .map(|u| u.mem_used)
                    .unwrap_or(container.resident_mem()),
                mem_limit: container.spec().mem_limit,
                net_used: usage.map(|u| u.net_used).unwrap_or_default(),
                net_requested: container.spec().net_request,
                in_flight: container.in_flight_count(),
                swapping: usage.map(|u| u.swapping).unwrap_or(false),
                ready: container.live(now),
                // A perfectly reliable loop always sees this period's data.
                age_ticks: 0,
            });
        }

        let nodes = cluster
            .nodes()
            .map(|n| {
                let (free_cpu, free_mem) = cluster
                    .free_resources(n.id())
                    .expect("node exists while iterating");
                let mut hosted: Vec<ServiceId> = n
                    .containers()
                    .iter()
                    .filter_map(|&c| cluster.container(c))
                    .filter(|c| c.state() != ContainerState::Removed && !c.spec().antagonist)
                    .map(|c| c.service())
                    .collect();
                hosted.sort_unstable();
                hosted.dedup();
                NodeView {
                    node: n.id(),
                    free_cpu,
                    free_mem,
                    hosted_services: hosted,
                }
            })
            .collect();

        ClusterView {
            now,
            period_secs,
            services,
            nodes,
            staleness_budget_ticks: self
                .control_plane
                .as_ref()
                .map(|cp| cp.config().staleness_budget_ticks)
                .unwrap_or(u32::MAX),
        }
    }

    /// Capacity of the dense usage-sample scratch (regression hook:
    /// steady-state collection must not reallocate it).
    pub fn usage_scratch_capacity(&self) -> usize {
        self.usage_scratch.capacity()
    }

    /// Collects the periodic snapshot through the degraded control
    /// plane: Node Manager reports are *transmitted* (and possibly lost,
    /// delayed, or duplicated) rather than read directly, and the view
    /// is assembled from the control plane's sample store, each replica
    /// stamped with its sample age.
    ///
    /// Only the *stats* path degrades. Replica existence/readiness and
    /// node free resources stay live queries: they model the placement
    /// API (`docker ps` against the managers), which is a separate,
    /// synchronous channel in the paper's platform — and what the roll
    /// call already relies on.
    fn collect_degraded(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        period_secs: f64,
        trace: &mut TraceSink,
    ) -> ClusterView {
        let cp = self
            .control_plane
            .as_mut()
            .expect("collect_degraded requires a control plane");
        cp.begin_period(now, trace);
        for nm in &self.node_managers {
            // A muted Node Manager (stat outage fault) sends nothing at
            // all — its samples age until the outage lifts.
            if self.stat_outages.binary_search(&nm.node()).is_ok() {
                continue;
            }
            if let Ok(report) = nm.report(cluster) {
                cp.transmit(nm.node(), report.containers, now, trace);
            }
        }
        let mut live: Vec<ContainerId> = cluster
            .containers()
            .filter(|c| !c.spec().antagonist)
            .map(|c| c.id())
            .collect();
        live.sort_unstable();
        cp.prune_missing(&live);

        let mut services: Vec<ServiceView> = self
            .templates
            .iter()
            .map(|(&service, template)| ServiceView {
                service,
                replicas: Vec::new(),
                template_cpu: template.cpu_request,
                template_mem: template.mem_limit,
                base_mem: template.base_mem,
            })
            .collect();
        services.sort_by_key(|s| s.service);

        for container in cluster.containers() {
            if container.spec().antagonist || container.state() == ContainerState::Removed {
                continue;
            }
            let Some(service_view) = services
                .iter_mut()
                .find(|s| s.service == container.service())
            else {
                continue;
            };
            let sample = cp.sample(container.id());
            service_view.replicas.push(ReplicaView {
                container: container.id(),
                node: container.node(),
                cpu_used: sample.map(|(u, _)| u.cpu_used).unwrap_or_default(),
                cpu_requested: container.spec().cpu_request,
                mem_used: sample
                    .map(|(u, _)| u.mem_used)
                    .unwrap_or(container.resident_mem()),
                mem_limit: container.spec().mem_limit,
                net_used: sample.map(|(u, _)| u.net_used).unwrap_or_default(),
                net_requested: container.spec().net_request,
                in_flight: sample
                    .map(|(u, _)| u.in_flight)
                    .unwrap_or(container.in_flight_count()),
                swapping: sample.map(|(u, _)| u.swapping).unwrap_or(false),
                ready: container.live(now),
                age_ticks: sample.map(|(_, age)| age).unwrap_or(NEVER_REPORTED),
            });
        }

        let nodes = cluster
            .nodes()
            .map(|n| {
                let (free_cpu, free_mem) = cluster
                    .free_resources(n.id())
                    .expect("node exists while iterating");
                let mut hosted: Vec<ServiceId> = n
                    .containers()
                    .iter()
                    .filter_map(|&c| cluster.container(c))
                    .filter(|c| c.state() != ContainerState::Removed && !c.spec().antagonist)
                    .map(|c| c.service())
                    .collect();
                hosted.sort_unstable();
                hosted.dedup();
                NodeView {
                    node: n.id(),
                    free_cpu,
                    free_mem,
                    hosted_services: hosted,
                }
            })
            .collect();

        ClusterView {
            now,
            period_secs,
            services,
            nodes,
            staleness_budget_ticks: self
                .control_plane
                .as_ref()
                .map(|cp| cp.config().staleness_budget_ticks)
                .expect("control plane present"),
        }
    }

    /// Applies one action; returns whether it took effect.
    fn apply(
        &self,
        cluster: &mut Cluster,
        now: SimTime,
        action: ScalingAction,
        removal_failures: &mut Vec<FailedRequest>,
    ) -> bool {
        match action {
            ScalingAction::Update {
                container,
                cpu,
                mem,
            } => {
                let Some(current) = cluster.container(container) else {
                    return false;
                };
                let new_cpu = cpu.unwrap_or(current.spec().cpu_request);
                let new_mem = mem.unwrap_or(current.spec().mem_limit);
                cluster
                    .update_container(container, new_cpu, new_mem)
                    .is_ok()
            }
            ScalingAction::Spawn {
                service,
                node,
                cpu,
                mem,
            } => {
                let Some(template) = self.templates.get(&service) else {
                    return false;
                };
                let spec = template.clone().with_cpu_request(cpu).with_mem_limit(mem);
                cluster.start_container(node, spec, now).is_ok()
            }
            ScalingAction::Remove { container } => match cluster.remove_container(container, now) {
                Ok(failures) => {
                    removal_failures.extend(failures);
                    true
                }
                Err(_) => false,
            },
            ScalingAction::SetNetCap { container, cap } => {
                cluster.update_net_cap(container, cap).is_ok()
            }
        }
    }
}

/// Builds the [`EventKind::Decision`] describing an applied action, with
/// the service/node provenance resolved through the cluster (removed
/// containers keep their entries, so post-apply lookups still answer).
fn decision_event(cluster: &Cluster, algorithm: &'static str, action: &ScalingAction) -> EventKind {
    let locate = |id: ContainerId| {
        cluster
            .container(id)
            .map(|c| (c.service().index(), c.node().index()))
    };
    match *action {
        ScalingAction::Update {
            container,
            cpu,
            mem,
        } => {
            let loc = locate(container);
            EventKind::Decision {
                algorithm,
                service: loc.map(|(s, _)| s).unwrap_or(u32::MAX),
                action: ActionTag::Update,
                container: Some(container.index()),
                node: loc.map(|(_, n)| n),
                cpu: cpu.map(|c| c.get()),
                mem: mem.map(|m| m.get()),
            }
        }
        ScalingAction::Spawn {
            service,
            node,
            cpu,
            mem,
        } => EventKind::Decision {
            algorithm,
            service: service.index(),
            action: ActionTag::Spawn,
            container: None,
            node: Some(node.index()),
            cpu: Some(cpu.get()),
            mem: Some(mem.get()),
        },
        ScalingAction::Remove { container } => {
            let loc = locate(container);
            EventKind::Decision {
                algorithm,
                service: loc.map(|(s, _)| s).unwrap_or(u32::MAX),
                action: ActionTag::Remove,
                container: Some(container.index()),
                node: loc.map(|(_, n)| n),
                cpu: None,
                mem: None,
            }
        }
        ScalingAction::SetNetCap { container, cap } => {
            let loc = locate(container);
            EventKind::Decision {
                algorithm,
                service: loc.map(|(s, _)| s).unwrap_or(u32::MAX),
                action: ActionTag::NetCap,
                container: Some(container.index()),
                node: loc.map(|(_, n)| n),
                cpu: cap.map(|c| c.get()),
                mem: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{HpaConfig, KubernetesHpa, NoScaling};
    use hyscale_cluster::{ClusterConfig, Cores, MemMb, NodeSpec, Request};
    use hyscale_sim::SimDuration;

    fn templates(svc: ServiceId) -> HashMap<ServiceId, ContainerSpec> {
        let mut t = HashMap::new();
        t.insert(svc, ContainerSpec::new(svc).with_startup_secs(0.0));
        t
    }

    fn cluster_with_one_service() -> (Cluster, ServiceId) {
        let mut cl = Cluster::new(ClusterConfig::default());
        let n0 = cl.add_node(NodeSpec::uniform_worker());
        cl.add_node(NodeSpec::uniform_worker());
        let svc = ServiceId::new(0);
        cl.start_container(
            n0,
            ContainerSpec::new(svc).with_startup_secs(0.0),
            SimTime::ZERO,
        )
        .unwrap();
        (cl, svc)
    }

    #[test]
    fn collect_builds_consistent_view() {
        let (mut cl, svc) = cluster_with_one_service();
        let mut monitor = Monitor::new(Box::new(NoScaling), &cl, templates(svc));
        let view = monitor.collect(&mut cl, SimTime::from_secs(5.0), 5.0);
        assert_eq!(view.services.len(), 1);
        assert_eq!(view.services[0].replica_count(), 1);
        assert_eq!(view.nodes.len(), 2);
        assert!(view.nodes[0].hosts(svc));
        assert!(!view.nodes[1].hosts(svc));
        assert_eq!(view.period_secs, 5.0);
    }

    /// Regression (mirrors the balancer's `route_cohort` scratch test):
    /// repeated collection reuses one dense usage scratch instead of
    /// building a fresh map per period.
    #[test]
    fn collect_reuses_usage_scratch_without_reallocating() {
        let (mut cl, svc) = cluster_with_one_service();
        let node = cl.nodes().next().unwrap().id();
        for _ in 0..7 {
            cl.start_container(
                node,
                ContainerSpec::new(svc).with_startup_secs(0.0),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let mut monitor = Monitor::new(Box::new(NoScaling), &cl, templates(svc));
        // First collection sizes the scratch to the container-id space.
        monitor.collect(&mut cl, SimTime::from_secs(5.0), 5.0);
        let cap = monitor.usage_scratch_capacity();
        assert!(cap >= 8, "scratch should hold all samples, cap {cap}");
        for i in 0..50u64 {
            let now = SimTime::from_secs(5.0 + i as f64);
            monitor.collect(&mut cl, now, 5.0);
        }
        assert_eq!(
            monitor.usage_scratch_capacity(),
            cap,
            "steady-state collection reallocated the scratch"
        );
    }

    #[test]
    fn usage_flows_from_cluster_to_view() {
        let (mut cl, svc) = cluster_with_one_service();
        let ctr = cl.service_replicas(svc)[0];
        cl.admit_request(
            ctr,
            Request::cpu_bound(svc, SimTime::ZERO, 100.0),
            SimTime::ZERO,
        )
        .unwrap();
        let dt = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            cl.advance(now, dt);
            now += dt;
        }
        let mut monitor = Monitor::new(Box::new(NoScaling), &cl, templates(svc));
        let view = monitor.collect(&mut cl, now, 5.0);
        let replica = &view.services[0].replicas[0];
        assert!(replica.cpu_used.get() > 0.5, "cpu {:?}", replica.cpu_used);
        assert_eq!(replica.in_flight, 1);
    }

    #[test]
    fn run_period_applies_spawns() {
        let (mut cl, svc) = cluster_with_one_service();
        let ctr = cl.service_replicas(svc)[0];
        // Generate load so the HPA wants more replicas.
        for _ in 0..8 {
            cl.admit_request(
                ctr,
                Request::cpu_bound(svc, SimTime::ZERO, 50.0),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let dt = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            cl.advance(now, dt);
            now += dt;
        }
        let mut monitor = Monitor::new(
            Box::new(KubernetesHpa::new(HpaConfig::default())),
            &cl,
            templates(svc),
        );
        let report = monitor.run_period(&mut cl, now, 5.0);
        assert!(
            report.applied.iter().any(|a| a.is_horizontal()),
            "expected spawns, got {:?}",
            report.applied
        );
        assert!(cl.service_replicas(svc).len() > 1);
    }

    #[test]
    fn removals_surface_aborted_requests() {
        let (mut cl, svc) = cluster_with_one_service();
        let node1 = cl.nodes().nth(1).unwrap().id();
        let extra = cl
            .start_container(
                node1,
                ContainerSpec::new(svc).with_startup_secs(0.0),
                SimTime::ZERO,
            )
            .unwrap();
        cl.admit_request(
            extra,
            Request::cpu_bound(svc, SimTime::ZERO, 100.0),
            SimTime::ZERO,
        )
        .unwrap();
        // Idle CPU: the HPA scales down to one replica; replica `extra`
        // has work in flight but the first replica has less, so the HPA
        // removes the idle one... make `extra` least loaded instead:
        // give the first replica two requests.
        let first = cl.service_replicas(svc)[0];
        cl.admit_request(
            first,
            Request::cpu_bound(svc, SimTime::ZERO, 100.0),
            SimTime::ZERO,
        )
        .unwrap();
        cl.admit_request(
            first,
            Request::cpu_bound(svc, SimTime::ZERO, 100.0),
            SimTime::ZERO,
        )
        .unwrap();

        let mut monitor = Monitor::new(
            Box::new(KubernetesHpa::new(HpaConfig::default())),
            &cl,
            templates(svc),
        );
        // No cluster time has passed: usage is 0, so scale-down to min=1.
        let report = monitor.run_period(&mut cl, SimTime::from_secs(60.0), 5.0);
        assert!(report
            .applied
            .iter()
            .any(|a| matches!(a, ScalingAction::Remove { .. })));
        assert_eq!(report.removal_failures.len(), 1);
    }

    #[test]
    fn update_merges_with_current_spec() {
        let (mut cl, svc) = cluster_with_one_service();
        let ctr = cl.service_replicas(svc)[0];
        let monitor = Monitor::new(Box::new(NoScaling), &cl, templates(svc));
        let mut failures = Vec::new();
        let ok = monitor.apply(
            &mut cl,
            SimTime::ZERO,
            ScalingAction::Update {
                container: ctr,
                cpu: Some(Cores(2.0)),
                mem: None,
            },
            &mut failures,
        );
        assert!(ok);
        let spec = cl.container(ctr).unwrap().spec();
        assert_eq!(spec.cpu_request, Cores(2.0));
        assert_eq!(spec.mem_limit, MemMb(256.0)); // unchanged
    }

    #[test]
    fn actions_on_unknown_entities_are_dropped() {
        let (mut cl, svc) = cluster_with_one_service();
        let monitor = Monitor::new(Box::new(NoScaling), &cl, templates(svc));
        let mut failures = Vec::new();
        assert!(!monitor.apply(
            &mut cl,
            SimTime::ZERO,
            ScalingAction::Remove {
                container: hyscale_cluster::ContainerId::new(99)
            },
            &mut failures,
        ));
        let node0 = cl.nodes().next().unwrap().id();
        assert!(!monitor.apply(
            &mut cl,
            SimTime::ZERO,
            ScalingAction::Spawn {
                service: ServiceId::new(42), // no template
                node: node0,
                cpu: Cores(0.5),
                mem: MemMb(128.0),
            },
            &mut failures,
        ));
        assert!(failures.is_empty());
    }

    #[test]
    fn stat_outage_mutes_a_nodes_usage() {
        let (mut cl, svc) = cluster_with_one_service();
        let ctr = cl.service_replicas(svc)[0];
        let node0 = cl.nodes().next().unwrap().id();
        cl.admit_request(
            ctr,
            Request::cpu_bound(svc, SimTime::ZERO, 100.0),
            SimTime::ZERO,
        )
        .unwrap();
        let dt = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            cl.advance(now, dt);
            now += dt;
        }
        let mut monitor = Monitor::new(Box::new(NoScaling), &cl, templates(svc));
        monitor.set_stat_outages(vec![node0]);
        let muted = monitor.collect(&mut cl, now, 5.0);
        // No fresh NM report: cpu falls back to 0 (stale default).
        assert_eq!(muted.services[0].replicas[0].cpu_used.get(), 0.0);
        // Un-muting restores the real usage (the window kept
        // accumulating while reports were dropped).
        monitor.set_stat_outages(Vec::new());
        let fresh = monitor.collect(&mut cl, now, 5.0);
        assert!(fresh.services[0].replicas[0].cpu_used.get() > 0.5);
    }

    #[test]
    fn roll_call_detects_replicas_that_died_without_a_decision() {
        let (mut cl, svc) = cluster_with_one_service();
        let ctr = cl.service_replicas(svc)[0];
        let mut monitor = Monitor::new(Box::new(NoScaling), &cl, templates(svc));
        // First period: everything answers.
        let report = monitor.run_period(&mut cl, SimTime::from_secs(5.0), 5.0);
        assert!(report.dead_replicas.is_empty());
        // The node crashes between periods; its replica dies silently.
        let node0 = cl.nodes().next().unwrap().id();
        cl.crash_node(node0, SimTime::from_secs(7.0)).unwrap();
        let report = monitor.run_period(&mut cl, SimTime::from_secs(10.0), 5.0);
        assert_eq!(report.dead_replicas, vec![(svc, ctr)]);
        // The death is reported once, not every period thereafter.
        let report = monitor.run_period(&mut cl, SimTime::from_secs(15.0), 5.0);
        assert!(report.dead_replicas.is_empty());
    }

    #[test]
    fn monitor_removals_are_not_flagged_as_deaths() {
        let (mut cl, svc) = cluster_with_one_service();
        let node1 = cl.nodes().nth(1).unwrap().id();
        cl.start_container(
            node1,
            ContainerSpec::new(svc).with_startup_secs(0.0),
            SimTime::ZERO,
        )
        .unwrap();
        let mut monitor = Monitor::new(
            Box::new(KubernetesHpa::new(HpaConfig::default())),
            &cl,
            templates(svc),
        );
        // Idle usage: the HPA scales in to one replica. That removal is a
        // decision, so the next roll call must not call it a death.
        let report = monitor.run_period(&mut cl, SimTime::from_secs(60.0), 5.0);
        assert!(report
            .applied
            .iter()
            .any(|a| matches!(a, ScalingAction::Remove { .. })));
        let report = monitor.run_period(&mut cl, SimTime::from_secs(65.0), 5.0);
        assert!(report.dead_replicas.is_empty());
    }

    #[test]
    fn debug_shows_algorithm() {
        let (cl, svc) = cluster_with_one_service();
        let monitor = Monitor::new(Box::new(NoScaling), &cl, templates(svc));
        let dbg = format!("{monitor:?}");
        assert!(dbg.contains("none"));
        assert_eq!(monitor.algorithm_name(), "none");
    }

    #[test]
    fn stat_outage_order_does_not_matter() {
        // Satellite fix: the outage set is sorted and binary-searched;
        // behaviour must be identical to the old linear scan regardless
        // of the order the injector hands the nodes over in.
        let (mut cl, svc) = cluster_with_one_service();
        let node1 = cl.nodes().nth(1).unwrap().id();
        cl.start_container(
            node1,
            ContainerSpec::new(svc).with_startup_secs(0.0),
            SimTime::ZERO,
        )
        .unwrap();
        for ctr in cl.service_replicas(svc) {
            cl.admit_request(
                ctr,
                Request::cpu_bound(svc, SimTime::ZERO, 100.0),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let dt = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            cl.advance(now, dt);
            now += dt;
        }
        let node0 = cl.nodes().next().unwrap().id();
        let mut monitor = Monitor::new(Box::new(NoScaling), &cl, templates(svc));
        // Reverse (unsorted) input mutes exactly the same nodes.
        monitor.set_stat_outages(vec![node1, node0]);
        let both_muted = monitor.collect(&mut cl, now, 5.0);
        for r in &both_muted.services[0].replicas {
            assert_eq!(r.cpu_used.get(), 0.0, "replica {:?} not muted", r.container);
        }
        monitor.set_stat_outages(vec![node1]);
        let one_muted = monitor.collect(&mut cl, now, 5.0);
        let by_node = |view: &ClusterView, node: NodeId| {
            view.services[0]
                .replicas
                .iter()
                .find(|r| r.node == node)
                .unwrap()
                .cpu_used
                .get()
        };
        assert!(by_node(&one_muted, node0) > 0.0);
        assert_eq!(by_node(&one_muted, node1), 0.0);
    }

    mod degraded {
        use super::*;
        use crate::controlplane::{ControlPlane, ControlPlaneConfig};
        use hyscale_sim::SimRng;

        /// A scripted policy: emits each queued action list once, in
        /// order, then holds.
        #[derive(Debug)]
        struct Scripted {
            script: Vec<Vec<ScalingAction>>,
            cursor: usize,
        }

        impl Scripted {
            fn new(script: Vec<Vec<ScalingAction>>) -> Self {
                Scripted { script, cursor: 0 }
            }
        }

        impl Autoscaler for Scripted {
            fn name(&self) -> &'static str {
                "scripted"
            }

            fn decide(&mut self, _view: &ClusterView) -> Vec<ScalingAction> {
                let actions = self.script.get(self.cursor).cloned().unwrap_or_default();
                self.cursor += 1;
                actions
            }
        }

        fn enabled_config() -> ControlPlaneConfig {
            ControlPlaneConfig {
                enabled: true,
                staleness_budget_ticks: 0,
                quorum_fraction: 1.0,
                ..ControlPlaneConfig::perfect()
            }
        }

        #[test]
        fn healthy_control_plane_matches_perfect_views() {
            let (mut cl, svc) = cluster_with_one_service();
            let mut monitor = Monitor::new(Box::new(NoScaling), &cl, templates(svc));
            monitor.set_control_plane(ControlPlane::new(enabled_config(), SimRng::seed_from(1)));
            let report = monitor.run_period(&mut cl, SimTime::from_secs(5.0), 5.0);
            assert!(!report.safe_mode);
            let replica = &report.view.services[0].replicas[0];
            assert_eq!(replica.age_ticks, 0);
        }

        #[test]
        fn safe_mode_engages_and_disengages_with_trace_events() {
            let (mut cl, svc) = cluster_with_one_service();
            let node0 = cl.nodes().next().unwrap().id();
            let node1 = cl.nodes().nth(1).unwrap().id();
            // A scripted spawn every period proves scaling freezes.
            let script: Vec<Vec<ScalingAction>> = (0..10)
                .map(|_| {
                    vec![ScalingAction::Spawn {
                        service: svc,
                        node: node1,
                        cpu: Cores(0.1),
                        mem: MemMb(64.0),
                    }]
                })
                .collect();
            let mut monitor = Monitor::new(Box::new(Scripted::new(script)), &cl, templates(svc));
            monitor.set_control_plane(ControlPlane::new(enabled_config(), SimRng::seed_from(2)));
            let mut trace = TraceSink::with_capacity(256);

            // Period 1: everyone reports; scaling proceeds.
            let r1 = monitor.run_period_traced(&mut cl, SimTime::from_secs(5.0), 5.0, &mut trace);
            assert!(!r1.safe_mode);
            assert_eq!(r1.applied.len(), 1);

            // Quorum of nodes muted: no fresh reports -> safe mode, all
            // scaling frozen.
            monitor.set_stat_outages(vec![node0, node1]);
            let r2 = monitor.run_period_traced(&mut cl, SimTime::from_secs(10.0), 5.0, &mut trace);
            assert!(r2.safe_mode);
            assert!(r2.applied.is_empty(), "scaling must freeze in safe mode");
            assert!(trace
                .events()
                .any(|e| matches!(e.kind, EventKind::SafeMode { entered: true, .. })));
            // Staying in safe mode does not re-emit the entry event.
            let r3 = monitor.run_period_traced(&mut cl, SimTime::from_secs(15.0), 5.0, &mut trace);
            assert!(r3.safe_mode);
            let entries = trace
                .events()
                .filter(|e| matches!(e.kind, EventKind::SafeMode { entered: true, .. }))
                .count();
            assert_eq!(entries, 1);

            // Reports return: safe mode exits with an event and scaling
            // resumes.
            monitor.set_stat_outages(Vec::new());
            let r4 = monitor.run_period_traced(&mut cl, SimTime::from_secs(20.0), 5.0, &mut trace);
            assert!(!r4.safe_mode);
            assert_eq!(r4.applied.len(), 1);
            assert!(trace
                .events()
                .any(|e| matches!(e.kind, EventKind::SafeMode { entered: false, .. })));
            let stats = monitor.control_plane().unwrap().stats;
            assert_eq!(stats.safe_mode_periods, 2);
        }

        #[test]
        fn lost_ack_spawn_is_never_double_placed() {
            // Idempotency-key invariant: every actuation fails with a
            // lost ack (the action executed, the Monitor never hears),
            // so every retry would double-place without the key.
            let (mut cl, svc) = cluster_with_one_service();
            let node1 = cl.nodes().nth(1).unwrap().id();
            let script = vec![vec![ScalingAction::Spawn {
                service: svc,
                node: node1,
                cpu: Cores(0.1),
                mem: MemMb(64.0),
            }]];
            let config = ControlPlaneConfig {
                actuation_failure_prob: 1.0,
                lost_ack_frac: 1.0,
                retry_base_secs: 1.0,
                ..enabled_config()
            };
            let mut monitor = Monitor::new(Box::new(Scripted::new(script)), &cl, templates(svc));
            monitor.set_control_plane(ControlPlane::new(config, SimRng::seed_from(3)));
            let before = cl.service_replicas(svc).len();
            let r1 = monitor.run_period(&mut cl, SimTime::from_secs(5.0), 5.0);
            assert_eq!(r1.applied.len(), 1, "lost-ack action still executes");
            assert_eq!(cl.service_replicas(svc).len(), before + 1);
            // Several more periods: the pending retry is deduplicated,
            // never re-executed.
            for p in 2..6 {
                monitor.run_period(&mut cl, SimTime::from_secs(5.0 * p as f64), 5.0);
            }
            assert_eq!(
                cl.service_replicas(svc).len(),
                before + 1,
                "the idempotency key must prevent duplicate placement"
            );
            let stats = monitor.control_plane().unwrap().stats;
            assert_eq!(stats.actuations_deduped, 1);
            assert_eq!(monitor.control_plane().unwrap().pending_retries(), 0);
        }

        #[test]
        fn dropped_actuation_retries_through_the_monitor() {
            let (mut cl, svc) = cluster_with_one_service();
            let node1 = cl.nodes().nth(1).unwrap().id();
            let script = vec![vec![ScalingAction::Spawn {
                service: svc,
                node: node1,
                cpu: Cores(0.1),
                mem: MemMb(64.0),
            }]];
            let config = ControlPlaneConfig {
                actuation_failure_prob: 1.0,
                lost_ack_frac: 0.0,
                retry_base_secs: 1.0,
                retry_max_secs: 1.0,
                max_actuation_retries: 10,
                ..enabled_config()
            };
            let mut monitor = Monitor::new(Box::new(Scripted::new(script)), &cl, templates(svc));
            monitor.set_control_plane(ControlPlane::new(config, SimRng::seed_from(4)));
            let before = cl.service_replicas(svc).len();
            let r1 = monitor.run_period(&mut cl, SimTime::from_secs(5.0), 5.0);
            assert!(r1.applied.is_empty(), "dropped action must not execute");
            assert_eq!(cl.service_replicas(svc).len(), before);
            // Heal the data plane mid-run: the pending retry executes on
            // the next period.
            monitor
                .control_plane
                .as_mut()
                .unwrap()
                .config_mut()
                .actuation_failure_prob = 0.0;
            let r2 = monitor.run_period(&mut cl, SimTime::from_secs(10.0), 5.0);
            assert_eq!(r2.applied.len(), 1);
            assert_eq!(cl.service_replicas(svc).len(), before + 1);
        }

        #[test]
        fn stale_service_is_never_scaled_in() {
            // 100% report loss: data ages past the budget immediately;
            // a scripted Remove must be vetoed every period. Quorum is
            // disabled so the veto (not safe mode) is what blocks it.
            let (mut cl, svc) = cluster_with_one_service();
            let victim = cl.service_replicas(svc)[0];
            let script: Vec<Vec<ScalingAction>> = (0..5)
                .map(|_| vec![ScalingAction::Remove { container: victim }])
                .collect();
            let config = ControlPlaneConfig {
                loss_prob: 1.0,
                quorum_fraction: 0.0,
                staleness_budget_ticks: 0,
                ..enabled_config()
            };
            let mut monitor = Monitor::new(Box::new(Scripted::new(script)), &cl, templates(svc));
            monitor.set_control_plane(ControlPlane::new(config, SimRng::seed_from(5)));
            for p in 1..=5 {
                let r = monitor.run_period(&mut cl, SimTime::from_secs(5.0 * p as f64), 5.0);
                assert!(!r.safe_mode);
                assert!(r.applied.is_empty(), "period {p}: {:?}", r.applied);
            }
            assert_eq!(cl.service_replicas(svc).len(), 1, "replica must survive");
            let stats = monitor.control_plane().unwrap().stats;
            assert_eq!(stats.stale_vetoes, 5);
            assert_eq!(stats.reports_lost, 10); // 2 nodes × 5 periods
        }
    }
}
