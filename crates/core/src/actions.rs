//! Scaling actions emitted by the algorithms and applied by the Monitor.

use hyscale_cluster::{ContainerId, Cores, Mbps, MemMb, NodeId, ServiceId};

/// One scaling decision.
///
/// Vertical actions map to `docker update`; `Spawn`/`Remove` are the
/// horizontal primitives; `SetNetCap` is the `tc` reconfiguration used by
/// network-aware policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalingAction {
    /// Vertically scale a replica: set its CPU request and/or memory
    /// limit (unset fields keep their current value).
    Update {
        /// The replica to update.
        container: ContainerId,
        /// New CPU request, if changing.
        cpu: Option<Cores>,
        /// New memory limit, if changing.
        mem: Option<MemMb>,
    },
    /// Horizontally scale out: start a new replica of `service` on `node`.
    Spawn {
        /// The service gaining a replica.
        service: ServiceId,
        /// Placement target.
        node: NodeId,
        /// Initial CPU request for the new replica.
        cpu: Cores,
        /// Initial memory limit for the new replica.
        mem: MemMb,
    },
    /// Horizontally scale in: remove a replica (aborting its in-flight
    /// requests as removal failures).
    Remove {
        /// The replica to remove.
        container: ContainerId,
    },
    /// Reconfigure a replica's `tc` egress cap (`None` lifts the cap).
    SetNetCap {
        /// The replica to reconfigure.
        container: ContainerId,
        /// The new cap, or `None` for uncapped.
        cap: Option<Mbps>,
    },
}

impl ScalingAction {
    /// True for vertical (in-place) actions.
    pub fn is_vertical(&self) -> bool {
        matches!(
            self,
            ScalingAction::Update { .. } | ScalingAction::SetNetCap { .. }
        )
    }

    /// True for horizontal (replica-count-changing) actions.
    pub fn is_horizontal(&self) -> bool {
        matches!(
            self,
            ScalingAction::Spawn { .. } | ScalingAction::Remove { .. }
        )
    }
}

impl std::fmt::Display for ScalingAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalingAction::Update {
                container,
                cpu,
                mem,
            } => {
                write!(f, "update {container}")?;
                if let Some(c) = cpu {
                    write!(f, " cpu={c}")?;
                }
                if let Some(m) = mem {
                    write!(f, " mem={m}MB")?;
                }
                Ok(())
            }
            ScalingAction::Spawn {
                service,
                node,
                cpu,
                mem,
            } => {
                write!(f, "spawn {service} on {node} (cpu={cpu}, mem={mem}MB)")
            }
            ScalingAction::Remove { container } => write!(f, "remove {container}"),
            ScalingAction::SetNetCap { container, cap } => match cap {
                Some(c) => write!(f, "tc {container} cap={c}Mbps"),
                None => write!(f, "tc {container} uncapped"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let update = ScalingAction::Update {
            container: ContainerId::new(0),
            cpu: Some(Cores(1.0)),
            mem: None,
        };
        let spawn = ScalingAction::Spawn {
            service: ServiceId::new(0),
            node: NodeId::new(1),
            cpu: Cores(0.5),
            mem: MemMb(256.0),
        };
        let remove = ScalingAction::Remove {
            container: ContainerId::new(2),
        };
        let tc = ScalingAction::SetNetCap {
            container: ContainerId::new(3),
            cap: Some(Mbps(10.0)),
        };
        assert!(update.is_vertical() && !update.is_horizontal());
        assert!(spawn.is_horizontal() && !spawn.is_vertical());
        assert!(remove.is_horizontal());
        assert!(tc.is_vertical());
    }

    #[test]
    fn display_is_informative() {
        let a = ScalingAction::Update {
            container: ContainerId::new(5),
            cpu: Some(Cores(1.5)),
            mem: Some(MemMb(512.0)),
        };
        assert_eq!(a.to_string(), "update ctr-5 cpu=1.500 mem=512.000MB");
        let s = ScalingAction::Spawn {
            service: ServiceId::new(1),
            node: NodeId::new(2),
            cpu: Cores(0.25),
            mem: MemMb(128.0),
        };
        assert!(s.to_string().contains("spawn svc-1 on node-2"));
        let t = ScalingAction::SetNetCap {
            container: ContainerId::new(1),
            cap: None,
        };
        assert_eq!(t.to_string(), "tc ctr-1 uncapped");
    }
}
