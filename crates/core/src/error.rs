//! Error type for the autoscaler platform.

use std::error::Error;
use std::fmt;

use hyscale_cluster::ClusterError;
use hyscale_sim::{SimError, SnapshotError};

/// Errors raised by the autoscaler platform and simulation driver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A scenario was configured inconsistently.
    InvalidScenario(String),
    /// An error bubbled up from the cluster model.
    Cluster(ClusterError),
    /// An error bubbled up from the simulation substrate.
    Sim(SimError),
    /// A snapshot file could not be written, read, or restored.
    Snapshot(SnapshotError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidScenario(reason) => write!(f, "invalid scenario: {reason}"),
            CoreError::Cluster(e) => write!(f, "cluster error: {e}"),
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::Snapshot(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Cluster(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::Snapshot(e) => Some(e),
            CoreError::InvalidScenario(_) => None,
        }
    }
}

impl From<ClusterError> for CoreError {
    fn from(e: ClusterError) -> Self {
        CoreError::Cluster(e)
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<SnapshotError> for CoreError {
    fn from(e: SnapshotError) -> Self {
        CoreError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_cluster::NodeId;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidScenario("no nodes".into());
        assert_eq!(e.to_string(), "invalid scenario: no nodes");
        assert!(e.source().is_none());

        let e: CoreError = ClusterError::UnknownNode(NodeId::new(1)).into();
        assert!(e.to_string().contains("unknown node"));
        assert!(e.source().is_some());

        let e: CoreError = SimError::PastHorizon.into();
        assert!(e.to_string().contains("horizon"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<CoreError>();
    }
}
