//! Replica recovery after infrastructure failures.
//!
//! The Monitor's scaling algorithms react to *load*; this module reacts
//! to *death*. When replicas disappear underneath the platform (node
//! crash, OOM-kill — surfaced by the Monitor's roll call as
//! `dead_replicas`), the [`RecoveryManager`] respawns replacements
//! through the same placement path the autoscalers use, so a recovered
//! service looks exactly like a scaled one. Respawn attempts that find no
//! feasible node back off exponentially (capped), mirroring
//! `RestartPolicy` backoff in real Docker/Kubernetes, and are reported as
//! recovery failures for the availability accounting.

use std::collections::HashMap;

use hyscale_cluster::{Cluster, ContainerSpec, NodeId, ServiceId};
use hyscale_sim::{SimDuration, SimTime, SnapReader, SnapWriter, SnapshotError};
use hyscale_trace::{EventKind, TraceSink};

use crate::algorithms::PlacementPolicy;

/// Tunables for the recovery path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Replica floor per managed service: recovery respawns until each
    /// service has at least this many non-removed replicas (running *or*
    /// starting — a replacement already booting counts).
    pub min_replicas: usize,
    /// First retry delay after a failed respawn attempt.
    pub base_backoff_secs: f64,
    /// Retry delay ceiling (backoff doubles per consecutive failure).
    pub max_backoff_secs: f64,
    /// Node choice among feasible candidates.
    pub placement: PlacementPolicy,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            min_replicas: 1,
            base_backoff_secs: 5.0,
            max_backoff_secs: 40.0,
            placement: PlacementPolicy::default(),
        }
    }
}

impl RecoveryConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason if the backoff range is not
    /// finite-positive or inverted.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.base_backoff_secs.is_finite() && self.base_backoff_secs > 0.0) {
            return Err(format!(
                "base_backoff_secs must be positive, got {}",
                self.base_backoff_secs
            ));
        }
        if !(self.max_backoff_secs.is_finite() && self.max_backoff_secs >= self.base_backoff_secs) {
            return Err(format!(
                "max_backoff_secs must be >= base_backoff_secs, got {}",
                self.max_backoff_secs
            ));
        }
        Ok(())
    }
}

/// What one recovery pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Successful respawns, as `(service, node placed on)`.
    pub respawned: Vec<(ServiceId, NodeId)>,
    /// Services whose respawn attempt found no feasible node this pass
    /// (one entry per service per pass, regardless of deficit size).
    pub failed: Vec<ServiceId>,
}

/// Per-service retry state.
#[derive(Debug, Clone, Copy)]
struct Backoff {
    /// Attempts before this time are suppressed.
    next_attempt: SimTime,
    /// Delay to impose after the next failure.
    current_secs: f64,
}

/// Respawns dead replicas with capped exponential backoff.
#[derive(Debug, Clone)]
pub struct RecoveryManager {
    config: RecoveryConfig,
    backoff: HashMap<ServiceId, Backoff>,
}

impl RecoveryManager {
    /// Creates a manager with the given tunables.
    pub fn new(config: RecoveryConfig) -> Self {
        RecoveryManager {
            config,
            backoff: HashMap::new(),
        }
    }

    /// One recovery pass: for each templated service below the replica
    /// floor, try to respawn the deficit through the placement policy.
    ///
    /// Call once per Monitor period, after scaling actions have been
    /// applied. Respawned replicas boot with the template's normal
    /// startup delay — a recovered replica cold-starts, it is not
    /// pre-warmed like the scenario's initial replicas.
    pub fn run(
        &mut self,
        cluster: &mut Cluster,
        templates: &HashMap<ServiceId, ContainerSpec>,
        now: SimTime,
    ) -> RecoveryReport {
        self.run_traced(cluster, templates, now, &mut TraceSink::disabled())
    }

    /// Like [`RecoveryManager::run`], but records every respawn
    /// ([`EventKind::RecoveryRespawn`]) and every backoff arming
    /// ([`EventKind::RecoveryBackoff`], with the retry deadline) into
    /// `trace`.
    pub fn run_traced(
        &mut self,
        cluster: &mut Cluster,
        templates: &HashMap<ServiceId, ContainerSpec>,
        now: SimTime,
        trace: &mut TraceSink,
    ) -> RecoveryReport {
        let mut report = RecoveryReport::default();

        // Deterministic service order regardless of HashMap iteration.
        let mut services: Vec<ServiceId> = templates.keys().copied().collect();
        services.sort_unstable();

        for service in services {
            let template = &templates[&service];
            let have = cluster.service_replicas(service).len();
            let deficit = self.config.min_replicas.saturating_sub(have);
            if deficit == 0 {
                // Healthy: forget any backoff so the next incident starts
                // from the base delay again.
                self.backoff.remove(&service);
                continue;
            }
            if let Some(state) = self.backoff.get(&service) {
                if now < state.next_attempt {
                    continue; // still backing off from the last failure
                }
            }

            let mut spawned_any = false;
            let mut exhausted = false;
            for _ in 0..deficit {
                let placed = self
                    .place(cluster, template)
                    .filter(|&node| cluster.start_container(node, template.clone(), now).is_ok());
                match placed {
                    Some(node) => {
                        trace.emit(
                            now,
                            EventKind::RecoveryRespawn {
                                service: service.index(),
                                node: node.index(),
                            },
                        );
                        report.respawned.push((service, node));
                        spawned_any = true;
                    }
                    None => {
                        exhausted = true;
                        break;
                    }
                }
            }

            if exhausted {
                report.failed.push(service);
                let current = self
                    .backoff
                    .get(&service)
                    .map(|s| s.current_secs)
                    .unwrap_or(self.config.base_backoff_secs);
                let next_attempt = now + SimDuration::from_secs(current);
                trace.emit(
                    now,
                    EventKind::RecoveryBackoff {
                        service: service.index(),
                        retry_at_us: next_attempt.as_micros(),
                    },
                );
                self.backoff.insert(
                    service,
                    Backoff {
                        next_attempt,
                        current_secs: (current * 2.0).min(self.config.max_backoff_secs),
                    },
                );
            } else if spawned_any {
                self.backoff.remove(&service);
            }
        }
        report
    }

    /// Picks the preferred feasible node for one replica of `template`,
    /// or `None` if nothing fits.
    fn place(&self, cluster: &Cluster, template: &ContainerSpec) -> Option<NodeId> {
        let mut candidates: Vec<(NodeId, f64, f64)> = cluster
            .nodes()
            .filter_map(|n| {
                let (free_cpu, free_mem) = cluster.free_resources(n.id()).ok()?;
                Some((n.id(), free_cpu.get(), free_mem.get()))
            })
            .collect();
        candidates.sort_by(|a, b| {
            self.config
                .placement
                .prefer(a.1, a.0.index(), b.1, b.0.index())
        });
        candidates
            .iter()
            .find(|&&(_, free_cpu, free_mem)| {
                free_cpu >= template.cpu_request.get() && free_mem >= template.mem_limit.get()
            })
            .map(|&(node, _, _)| node)
    }

    /// Serializes the per-service backoff table, sorted by service
    /// (snapshot support). The configuration is rebuilt from scenario
    /// config on restore.
    pub fn snapshot_write(&self, w: &mut SnapWriter) {
        let mut entries: Vec<(u32, u64, f64)> = self
            .backoff
            .iter()
            .map(|(svc, b)| (svc.index(), b.next_attempt.as_micros(), b.current_secs))
            .collect();
        entries.sort_unstable_by_key(|&(svc, ..)| svc);
        w.put_usize(entries.len());
        for (svc, next_attempt, current_secs) in entries {
            w.put_u32(svc);
            w.put_u64(next_attempt);
            w.put_f64(current_secs);
        }
    }

    /// Overlays the backoff table captured by
    /// [`RecoveryManager::snapshot_write`].
    pub fn snapshot_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.backoff.clear();
        for _ in 0..r.get_usize()? {
            let svc = ServiceId::new(r.get_u32()?);
            let next_attempt = SimTime::from_micros(r.get_u64()?);
            let current_secs = r.get_f64()?;
            self.backoff.insert(
                svc,
                Backoff {
                    next_attempt,
                    current_secs,
                },
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_cluster::{ClusterConfig, ContainerState, Cores, MemMb, NodeSpec};

    fn templates(svc: ServiceId) -> HashMap<ServiceId, ContainerSpec> {
        let mut t = HashMap::new();
        t.insert(svc, ContainerSpec::new(svc).with_startup_secs(1.0));
        t
    }

    #[test]
    fn respawns_up_to_the_floor_with_cold_start() {
        let mut cl = Cluster::new(ClusterConfig::default());
        cl.add_node(NodeSpec::uniform_worker());
        let svc = ServiceId::new(0);
        let mut mgr = RecoveryManager::new(RecoveryConfig {
            min_replicas: 2,
            ..RecoveryConfig::default()
        });
        let now = SimTime::from_secs(10.0);
        let report = mgr.run(&mut cl, &templates(svc), now);
        assert_eq!(report.respawned.len(), 2);
        assert!(report.failed.is_empty());
        let replicas = cl.service_replicas(svc);
        assert_eq!(replicas.len(), 2);
        // Cold start: the replacements are Starting, not pre-warmed.
        assert!(replicas
            .iter()
            .all(|&id| cl.container(id).unwrap().state() == ContainerState::Starting));
        // A second pass is a no-op: starting replicas count toward the
        // floor, so no duplicate respawns pile up during boot.
        let again = mgr.run(&mut cl, &templates(svc), now);
        assert!(again.respawned.is_empty());
    }

    #[test]
    fn backoff_doubles_and_caps_then_resets_on_success() {
        let mut cl = Cluster::new(ClusterConfig::default());
        // A node too small to host the template: every attempt fails.
        cl.add_node(NodeSpec::small().with_memory(MemMb(64.0)));
        let svc = ServiceId::new(0);
        let t = templates(svc);
        let cfg = RecoveryConfig {
            min_replicas: 1,
            base_backoff_secs: 5.0,
            max_backoff_secs: 20.0,
            ..RecoveryConfig::default()
        };
        let mut mgr = RecoveryManager::new(cfg);

        let r0 = mgr.run(&mut cl, &t, SimTime::ZERO);
        assert_eq!(r0.failed, vec![svc]);
        // Suppressed until 5 s.
        assert!(mgr
            .run(&mut cl, &t, SimTime::from_secs(4.9))
            .failed
            .is_empty());
        // Second failure at 5 s; next delay 10 s.
        assert_eq!(
            mgr.run(&mut cl, &t, SimTime::from_secs(5.0)).failed,
            vec![svc]
        );
        assert!(mgr
            .run(&mut cl, &t, SimTime::from_secs(14.9))
            .failed
            .is_empty());
        // Third at 15 s; next delay 20 s (capped); fourth at 35 s.
        assert_eq!(
            mgr.run(&mut cl, &t, SimTime::from_secs(15.0)).failed,
            vec![svc]
        );
        assert!(mgr
            .run(&mut cl, &t, SimTime::from_secs(34.9))
            .failed
            .is_empty());
        assert_eq!(
            mgr.run(&mut cl, &t, SimTime::from_secs(35.0)).failed,
            vec![svc]
        );
        // The cap holds: the fifth attempt is 20 s later, not 40.
        assert_eq!(
            mgr.run(&mut cl, &t, SimTime::from_secs(55.0)).failed,
            vec![svc]
        );

        // Capacity appears; the respawn lands and backoff resets.
        cl.add_node(NodeSpec::uniform_worker());
        let r = mgr.run(&mut cl, &t, SimTime::from_secs(75.0));
        assert_eq!(r.respawned.len(), 1);
        assert!(mgr.backoff.is_empty());
    }

    #[test]
    fn placement_policy_picks_the_preferred_node() {
        let mut cl = Cluster::new(ClusterConfig::default());
        let big = cl.add_node(NodeSpec::uniform_worker().with_cores(Cores(8.0)));
        let small = cl.add_node(NodeSpec::uniform_worker());
        let svc = ServiceId::new(0);
        let t = templates(svc);

        let mut spread = RecoveryManager::new(RecoveryConfig {
            placement: PlacementPolicy::Spread,
            ..RecoveryConfig::default()
        });
        let r = spread.run(&mut cl, &t, SimTime::ZERO);
        assert_eq!(r.respawned, vec![(svc, big)]);

        let mut cl2 = Cluster::new(ClusterConfig::default());
        let _big = cl2.add_node(NodeSpec::uniform_worker().with_cores(Cores(8.0)));
        let small2 = cl2.add_node(NodeSpec::uniform_worker());
        let mut pack = RecoveryManager::new(RecoveryConfig {
            placement: PlacementPolicy::Pack,
            ..RecoveryConfig::default()
        });
        let r2 = pack.run(&mut cl2, &t, SimTime::ZERO);
        assert_eq!(r2.respawned, vec![(svc, small2)]);
        let _ = small;
    }

    #[test]
    fn healthy_services_clear_backoff_state() {
        let mut cl = Cluster::new(ClusterConfig::default());
        cl.add_node(NodeSpec::small().with_memory(MemMb(64.0)));
        let svc = ServiceId::new(0);
        let t = templates(svc);
        let mut mgr = RecoveryManager::new(RecoveryConfig::default());
        mgr.run(&mut cl, &t, SimTime::ZERO);
        assert!(!mgr.backoff.is_empty());
        // Capacity arrives and a replica shows up through another path
        // (e.g. the autoscaler): recovery stands down and forgets.
        let node = cl.add_node(NodeSpec::uniform_worker());
        cl.start_container(node, t[&svc].clone(), SimTime::from_secs(6.0))
            .unwrap();
        mgr.run(&mut cl, &t, SimTime::from_secs(6.0));
        assert!(mgr.backoff.is_empty());
    }

    #[test]
    fn config_validation() {
        assert!(RecoveryConfig::default().validate().is_ok());
        assert!(RecoveryConfig {
            base_backoff_secs: 0.0,
            ..RecoveryConfig::default()
        }
        .validate()
        .is_err());
        assert!(RecoveryConfig {
            base_backoff_secs: 10.0,
            max_backoff_secs: 5.0,
            ..RecoveryConfig::default()
        }
        .validate()
        .is_err());
    }
}
