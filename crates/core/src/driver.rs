//! End-to-end experiment driver: workload → load balancer → cluster →
//! Monitor, producing a [`RunReport`].
//!
//! A scenario is a pure function of its configuration and seed. The
//! driver owns the event loop: client arrivals (per-service
//! non-homogeneous Poisson processes), the fixed 100 ms resource tick,
//! and the Monitor's scaling period (5 s, matching the paper's
//! experiments). The paper's protocol of averaging each experiment over
//! five runs is [`SimulationDriver::run_averaged`] over five seeds.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;

use hyscale_cluster::{
    Cluster, ClusterConfig, Cohort, ContainerId, ContainerSpec, FailureKind, FaultInjector,
    FaultLog, FaultPlan, MemMb, NodeId, NodeSpec, Request, ServiceId, TickReport,
};
use hyscale_metrics::{
    AvailabilityTracker, CostMeter, MetricsRegistry, RequestOutcomes, ServiceAvailability,
    TimeSeries,
};
use hyscale_sim::{
    fnv1a, EventQueue, SimDuration, SimRng, SimTime, SnapReader, SnapWriter, SnapshotError,
    TickEngine, TickOutcome,
};
use hyscale_trace::{EventKind, TraceSink};
use hyscale_workload::{ArrivalProcess, LoadPattern, ServiceGraph, ServiceProfile, ServiceSpec};

use crate::algorithms::{AlgorithmKind, HpaConfig, HyScaleConfig};
use crate::balancer::LoadBalancer;
use crate::controlplane::{ControlPlane, ControlPlaneConfig, ControlPlaneStats};
use crate::error::CoreError;
use crate::flowgraph::{EntryPointStats, GraphTracker, PendingHop};
use crate::monitor::Monitor;
use crate::recovery::{RecoveryConfig, RecoveryManager};
use crate::resilience::{ResilienceConfig, ResilienceStats};
use hyscale_cluster::FailedRequest;

/// Complete description of one experiment run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Experiment name (used in reports).
    pub name: String,
    /// Master seed; every stochastic stream derives from it.
    pub seed: u64,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Resource-model tick.
    pub tick: SimDuration,
    /// Monitor scaling period (the paper queries every 5 s).
    pub scale_period: SimDuration,
    /// Worker-node hardware (the paper's LB nodes are excluded; only
    /// workers are modelled).
    pub nodes: Vec<NodeSpec>,
    /// The microservices under test.
    pub services: Vec<ServiceSpec>,
    /// Replicas started per service before the run.
    pub initial_replicas: usize,
    /// The algorithm under test.
    pub algorithm: AlgorithmKind,
    /// Horizontal-baseline parameters.
    pub hpa: HpaConfig,
    /// Hybrid-algorithm parameters.
    pub hyscale: HyScaleConfig,
    /// Resource-model overheads.
    pub cluster: ClusterConfig,
    /// Antagonist (stress) containers: `(node index, spec)` pairs started
    /// before the run, used by the Section III studies.
    pub antagonists: Vec<(usize, ContainerSpec)>,
    /// Scheduled machine additions/removals (paper future work:
    /// "dynamic addition and removal of machines").
    pub node_events: Vec<(f64, NodeEvent)>,
    /// Scheduled infrastructure faults (crashes, OOM-kills, NIC
    /// degradation, stat outages); empty = no chaos.
    pub faults: FaultPlan,
    /// Replica-recovery tunables (respawn floor, backoff).
    pub recovery: RecoveryConfig,
    /// Control-plane degradation model (report loss/delay/duplication,
    /// actuation failure) and the resilience machinery that survives it
    /// (staleness vetoes, safe mode, circuit breakers). Disabled =
    /// the legacy perfectly-reliable loop.
    pub control_plane: ControlPlaneConfig,
    /// Worker threads for the per-tick resource model (1 = serial).
    /// Results are bit-identical at any setting; see
    /// [`Cluster::set_parallelism`].
    pub parallelism: usize,
    /// Carry each tick's arrivals per service as one flow cohort instead
    /// of scheduling per-request arrival events: the tick draws a Poisson
    /// count, materializes one [`ServiceSpec::make_cohort`], and
    /// waterfills it across replicas. A different (fluid) arrival
    /// discipline from the default thinning process — not bit-comparable
    /// with it — but deterministic and bit-identical across parallelism.
    pub cohort_arrivals: bool,
    /// Let provably idle stretches (nothing in flight, no event, fault,
    /// or arrival due) be advanced in closed form as one jump. The warp
    /// is deterministic but not bit-identical to ticking through the same
    /// stretch (EWMA decay and usage windows are applied in closed form).
    pub time_warp: bool,
    /// Service dependency DAG over the service list (by index). `None` =
    /// the classic independent-services model. With a graph, client load
    /// attaches only to entry-point services; each completed hop spawns
    /// child work along its outgoing edges (admitted at the next tick, so
    /// inter-tier queueing is real), per-hop spans are journaled, and
    /// end-to-end outcomes per entry point land in
    /// [`RunReport::entry_points`]. Derived traffic draws no randomness:
    /// child demands are the child's base demands scaled by the edge
    /// multipliers, so an edge-free graph reproduces the graph-free run
    /// byte for byte (every service is then an entry point).
    pub graph: Option<ServiceGraph>,
    /// Request-lifecycle resilience: per-hop retries with exponential
    /// backoff and seeded jitter, end-to-end deadline propagation,
    /// per-service retry budgets, and admission-control load shedding.
    /// Requires [`ScenarioConfig::graph`] when enabled; disabled (the
    /// default) leaves every run bit-identical to a build without the
    /// layer. All stochastic draws come from a dedicated RNG split in
    /// the serial phase, so results stay bit-identical at any worker
    /// count.
    pub resilience: ResilienceConfig,
    /// Periodic full-state snapshots: write the complete deterministic
    /// simulation state to disk at tick boundaries. `None` = no
    /// snapshots. Does not perturb the simulation: a run with snapshots
    /// enabled is bit-identical to one without.
    pub snapshot: Option<SnapshotPolicy>,
    /// Resume from a snapshot file written by a run of this *exact*
    /// configuration (checked via a config digest; parallelism and the
    /// snapshot/resume controls themselves may differ). `None` = start
    /// from tick zero.
    pub resume: Option<PathBuf>,
}

/// When and where [`SimulationDriver`] writes full-state snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotPolicy {
    /// Write a snapshot each time this many ticks have elapsed (time-warp
    /// jumps that overshoot a boundary snapshot once, at the landing
    /// tick). Must be positive.
    pub every_ticks: u64,
    /// Directory snapshot files are written into (created on demand).
    pub dir: PathBuf,
    /// Stop the run immediately after the first snapshot is written,
    /// without emitting the end-of-run counter dump. The returned report
    /// covers only the ticks that ran; the snapshot file plus
    /// [`ScenarioConfig::resume`] continue the run losslessly.
    pub halt_after_first: bool,
}

impl SnapshotPolicy {
    /// The file a snapshot taken after `tick` ticks is written to.
    pub fn file_for(&self, tick: u64) -> PathBuf {
        self.dir.join(format!("tick-{tick:010}.snap"))
    }
}

/// A scheduled change to the machine pool.
#[derive(Debug, Clone)]
pub enum NodeEvent {
    /// Power off the node at this index (of the initial `nodes` list);
    /// its containers are lost (removal failures).
    Decommission(usize),
    /// Bring a new machine of this spec online.
    Commission(NodeSpec),
}

impl ScenarioConfig {
    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidScenario`] describing the first
    /// problem.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.nodes.is_empty() {
            return Err(CoreError::InvalidScenario("no nodes".into()));
        }
        if self.services.is_empty() {
            return Err(CoreError::InvalidScenario("no services".into()));
        }
        if self.initial_replicas == 0 {
            return Err(CoreError::InvalidScenario(
                "initial_replicas must be at least 1".into(),
            ));
        }
        if self.tick.is_zero() || self.scale_period.is_zero() || self.duration.is_zero() {
            return Err(CoreError::InvalidScenario(
                "durations (tick, scale_period, duration) must be positive".into(),
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for s in &self.services {
            if !seen.insert(s.id) {
                return Err(CoreError::InvalidScenario(format!(
                    "duplicate service id {}",
                    s.id
                )));
            }
        }
        for (idx, _) in &self.antagonists {
            if *idx >= self.nodes.len() {
                return Err(CoreError::InvalidScenario(format!(
                    "antagonist node index {idx} out of range"
                )));
            }
        }
        for (secs, event) in &self.node_events {
            if !secs.is_finite() || *secs < 0.0 {
                return Err(CoreError::InvalidScenario(format!(
                    "node event time must be non-negative, got {secs}"
                )));
            }
            if let NodeEvent::Decommission(idx) = event {
                if *idx >= self.nodes.len() {
                    return Err(CoreError::InvalidScenario(format!(
                        "decommission node index {idx} out of range"
                    )));
                }
            }
        }
        self.hpa
            .validate()
            .map_err(|e| CoreError::InvalidScenario(format!("hpa: {e}")))?;
        self.hyscale
            .validate()
            .map_err(|e| CoreError::InvalidScenario(format!("hyscale: {e}")))?;
        let service_ids: Vec<ServiceId> = self.services.iter().map(|s| s.id).collect();
        self.faults
            .validate(self.nodes.len(), &service_ids)
            .map_err(|e| CoreError::InvalidScenario(format!("faults: {e}")))?;
        self.recovery
            .validate()
            .map_err(|e| CoreError::InvalidScenario(format!("recovery: {e}")))?;
        self.control_plane
            .validate()
            .map_err(|e| CoreError::InvalidScenario(format!("control_plane: {e}")))?;
        if let Some(policy) = &self.snapshot {
            if policy.every_ticks == 0 {
                return Err(CoreError::InvalidScenario(
                    "snapshot.every_ticks must be positive".into(),
                ));
            }
        }
        if let Some(graph) = &self.graph {
            graph
                .validate()
                .map_err(|e| CoreError::InvalidScenario(format!("graph: {e}")))?;
            if graph.nodes() != self.services.len() {
                return Err(CoreError::InvalidScenario(format!(
                    "graph spans {} services, scenario has {}",
                    graph.nodes(),
                    self.services.len()
                )));
            }
        }
        self.resilience
            .validate()
            .map_err(|e| CoreError::InvalidScenario(format!("resilience: {e}")))?;
        if self.resilience.enabled && self.graph.is_none() {
            return Err(CoreError::InvalidScenario(
                "resilience requires a service graph (retries, deadlines, and \
                 shedding act on graph roots and hops)"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Counts of scaling operations performed during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalingCounts {
    /// Vertical (`docker update` / `tc`) operations.
    pub vertical: u64,
    /// Replica spawns.
    pub spawns: u64,
    /// Replica removals.
    pub removals: u64,
}

impl ScalingCounts {
    /// Total operations of any kind.
    pub fn total(&self) -> u64 {
        self.vertical + self.spawns + self.removals
    }
}

impl std::ops::AddAssign for ScalingCounts {
    fn add_assign(&mut self, rhs: ScalingCounts) {
        self.vertical += rhs.vertical;
        self.spawns += rhs.spawns;
        self.removals += rhs.removals;
    }
}

/// Everything measured in one run (or merged across seeds).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario name.
    pub name: String,
    /// The algorithm that ran.
    pub algorithm: AlgorithmKind,
    /// Seeds merged into this report.
    pub seeds: Vec<u64>,
    /// Overall request outcomes.
    pub requests: RequestOutcomes,
    /// Outcomes per service.
    pub per_service: BTreeMap<ServiceId, RequestOutcomes>,
    /// Scaling-operation counts.
    pub scaling: ScalingCounts,
    /// Allocated-resource cost integral.
    pub cost: CostMeter,
    /// Total replica count sampled each scaling period.
    pub replicas: TimeSeries,
    /// Cluster CPU usage (cores) sampled each scaling period.
    pub cpu_used: TimeSeries,
    /// Cluster resident memory (MB) sampled each scaling period.
    pub mem_used: TimeSeries,
    /// Per-service availability (uptime %, MTTR, recovery counts).
    /// Tracked per tick only for scenarios with faults or node events;
    /// all-zero (nothing observed, 100% uptime) otherwise.
    pub availability: BTreeMap<ServiceId, ServiceAvailability>,
    /// Faults actually applied during the run.
    pub faults: FaultLog,
    /// Control-plane health counters (all zero when the control-plane
    /// degradation layer is disabled).
    pub control_plane: ControlPlaneStats,
    /// Ticks the time-warp fast path skipped in closed form (0 unless
    /// [`ScenarioConfig::time_warp`] was enabled).
    pub warp_ticks: u64,
    /// End-to-end outcomes per entry point, in ascending service order
    /// (empty unless [`ScenarioConfig::graph`] was set).
    pub entry_points: Vec<EntryPointStats>,
    /// Resilience-layer counters — retries, budget/deadline refusals,
    /// shed load, and the goodput-vs-wasted-work split (all zero unless
    /// [`ScenarioConfig::resilience`] was enabled).
    pub resilience: ResilienceStats,
    /// FNV-1a digest of the full serialized end-of-run state. `Some`
    /// only for single-seed runs that finished the horizon with
    /// snapshotting or resume enabled; two runs with equal digests ended
    /// in bit-identical simulation states.
    pub state_digest: Option<u64>,
}

impl RunReport {
    /// Mean response time in milliseconds (the paper's headline metric).
    pub fn mean_response_ms(&self) -> f64 {
        self.requests.mean_response_secs() * 1e3
    }

    /// Lowest per-service uptime percentage (100.0 when availability was
    /// not tracked).
    pub fn min_uptime_pct(&self) -> f64 {
        self.availability
            .values()
            .map(|a| a.uptime_pct())
            .fold(100.0, f64::min)
    }

    /// Largest per-service mean time to repair, in seconds.
    pub fn max_mttr_secs(&self) -> f64 {
        self.availability
            .values()
            .map(|a| a.mttr_secs())
            .fold(0.0, f64::max)
    }

    /// Total successful recovery respawns across services.
    pub fn total_respawns(&self) -> u64 {
        self.availability.values().map(|a| a.respawns).sum()
    }

    /// Total failed recovery attempts across services.
    pub fn total_recovery_failures(&self) -> u64 {
        self.availability
            .values()
            .map(|a| a.recovery_failures)
            .sum()
    }
}

/// Tallies one aborted/failed request exactly once, into both the overall
/// and the per-service outcomes, according to the paper's taxonomy:
/// scale-in and decommission aborts are **removal** failures, while
/// timeouts, queue aborts, and infrastructure deaths are tallied
/// separately and rolled up as **connection** failures in reports. Every
/// failure-recording site in the driver funnels through here, so a
/// request can never be double-counted or dropped — and, in graph mode,
/// so every lost hop reliably fails its root (or, with the resilience
/// layer enabled and a retryable failure, re-queues as a retry hop).
/// The failed attempt is tallied either way: retries are extra issued
/// load, so per-attempt accounting keeps `completed + failures ≤
/// issued` intact.
#[allow(clippy::too_many_arguments)]
fn record_failure(
    requests: &mut RequestOutcomes,
    per_service: &mut BTreeMap<ServiceId, RequestOutcomes>,
    graph: Option<&mut GraphTracker>,
    failure: &FailedRequest,
    rng: &mut SimRng,
    trace: &mut TraceSink,
    traced: bool,
) {
    if let Some(tracker) = graph {
        tracker.on_failed(failure, rng, trace, traced);
    }
    // Per-request paths always carry count 1; aborted cohorts arrive as
    // one aggregate record carrying their member count.
    record_failure_tally(requests, failure.kind, failure.count);
    if let Some(out) = per_service.get_mut(&failure.service) {
        record_failure_tally(out, failure.kind, failure.count);
    }
}

/// Bumps one outcome record's failure tally by kind.
fn record_failure_tally(out: &mut RequestOutcomes, kind: FailureKind, count: u64) {
    match kind {
        FailureKind::Removal => out.record_removal_failures(count),
        FailureKind::Timeout => out.record_timeout_failures(count),
        FailureKind::QueueAbort => out.record_queue_abort_failures(count),
        FailureKind::InfraDeath => out.record_infra_death_failures(count),
    }
}

/// Events on the driver's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A client request for service index `usize` arrives.
    Arrival(usize),
    /// The Monitor's scaling period fires.
    Scale,
    /// A scheduled machine addition/removal (index into
    /// `config.node_events`).
    NodeChange(usize),
}

/// Runs scenarios.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulationDriver;

impl SimulationDriver {
    /// Runs one scenario once.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidScenario`] for inconsistent
    /// configurations, or a wrapped cluster error if setup fails.
    pub fn run(config: &ScenarioConfig) -> Result<RunReport, CoreError> {
        Self::run_traced(config, &mut TraceSink::disabled())
    }

    /// Runs one scenario once, journaling decision provenance into
    /// `trace`.
    ///
    /// With a disabled sink this is exactly [`SimulationDriver::run`]:
    /// every emission site is gated on [`TraceSink::is_enabled`] (or is a
    /// no-op `emit`), so tracing costs nothing when off and never touches
    /// the simulation state either way — traced and untraced runs of the
    /// same config and seed produce identical [`RunReport`]s.
    ///
    /// # Errors
    ///
    /// Same contract as [`SimulationDriver::run`].
    pub fn run_traced(
        config: &ScenarioConfig,
        trace: &mut TraceSink,
    ) -> Result<RunReport, CoreError> {
        config.validate()?;
        let mut master_rng = SimRng::seed_from(config.seed);
        let traced = trace.is_enabled();
        // A resumed run continues the interrupted run's journal: it
        // neither re-announces the run nor restarts sequence numbers.
        if traced && config.resume.is_none() {
            trace.emit(
                SimTime::ZERO,
                EventKind::RunStart {
                    seed: config.seed,
                    algorithm: config.algorithm.label(),
                },
            );
        }

        // --- Cluster setup -------------------------------------------------
        let mut cluster = Cluster::new(config.cluster);
        cluster.set_parallelism(config.parallelism);
        let node_ids: Vec<NodeId> = config
            .nodes
            .iter()
            .map(|spec| cluster.add_node(*spec))
            .collect();

        for (node_idx, spec) in &config.antagonists {
            let spec = spec.clone().with_startup_secs(0.0);
            cluster.start_container(node_ids[*node_idx], spec, SimTime::ZERO)?;
        }

        // Initial replicas, placed round-robin across nodes. They are
        // pre-warmed (no startup delay): the paper's services are already
        // running when an experiment's measurement window opens.
        let mut placement_cursor = 0usize;
        for service in &config.services {
            for _ in 0..config.initial_replicas {
                let node = node_ids[placement_cursor % node_ids.len()];
                placement_cursor += 1;
                let spec = service.container.clone().with_startup_secs(0.0);
                cluster.start_container(node, spec, SimTime::ZERO)?;
            }
        }

        // --- Platform setup -------------------------------------------------
        let templates: HashMap<ServiceId, ContainerSpec> = config
            .services
            .iter()
            .map(|s| (s.id, s.container.clone()))
            .collect();
        let algorithm = config.algorithm.build(config.hpa, config.hyscale);
        let mut monitor = Monitor::new(algorithm, &cluster, templates.clone());
        let mut recovery = RecoveryManager::new(config.recovery);
        let mut injector = FaultInjector::new(&config.faults, &node_ids);

        // --- Workload setup ---------------------------------------------------
        let mut arrival_rngs: Vec<SimRng> =
            config.services.iter().map(|_| master_rng.split()).collect();
        let mut demand_rngs: Vec<SimRng> =
            config.services.iter().map(|_| master_rng.split()).collect();
        // Control-plane streams split *after* the workload streams so a
        // disabled control plane leaves every legacy stream untouched
        // (the splits still happen, keeping seeds comparable across
        // configs that only toggle `control_plane.enabled`).
        let cp_rng = master_rng.split();
        let lb_rng = master_rng.split();
        // The resilience stream (retry-backoff jitter) splits last and
        // unconditionally, so toggling the layer never shifts any other
        // stream; it is only ever drawn from in the serial phase.
        let mut resilience_rng = master_rng.split();

        let degraded_control = config.control_plane.enabled;
        let service_ids: Vec<ServiceId> = config.services.iter().map(|s| s.id).collect();
        let mut balancer = if degraded_control {
            monitor.set_control_plane(ControlPlane::new(config.control_plane, cp_rng));
            let mut lb = LoadBalancer::with_breakers(config.control_plane.breaker, lb_rng);
            // The balancer's first backend snapshot is the initial
            // placement; later ones arrive once per scaling period.
            lb.refresh(&cluster, &service_ids);
            lb
        } else {
            LoadBalancer::new()
        };
        let mut arrivals: Vec<ArrivalProcess> = config
            .services
            .iter()
            .map(|s| ArrivalProcess::new(s.load.clone()))
            .collect();

        // Graph mode: client load attaches only to entry points; every
        // non-entry tier sees purely derived traffic. Non-entry services
        // never draw from their arrival streams, which is exactly why an
        // edge-free graph (every service an entry) reproduces the
        // graph-free run bit for bit.
        let mut graph_tracker: Option<GraphTracker> = config
            .graph
            .as_ref()
            .map(|g| GraphTracker::new(g.clone(), &config.services, config.resilience));
        let takes_client_load = |idx: usize, tracker: &Option<GraphTracker>| {
            tracker.as_ref().is_none_or(|t| t.is_entry(idx))
        };

        let mut events: EventQueue<Event> = EventQueue::new();
        if !config.cohort_arrivals {
            // Per-request mode: each service runs a thinned Poisson
            // process of individual arrival events. Cohort mode draws a
            // per-tick Poisson count inside the tick body instead.
            for (idx, process) in arrivals.iter_mut().enumerate() {
                if !takes_client_load(idx, &graph_tracker) {
                    continue;
                }
                let first = process.next_arrival(SimTime::ZERO, &mut arrival_rngs[idx]);
                if first < SimTime::MAX {
                    events.schedule(first, Event::Arrival(idx));
                }
            }
        }
        events.schedule(SimTime::ZERO + config.scale_period, Event::Scale);
        for (idx, (secs, _)) in config.node_events.iter().enumerate() {
            events.schedule(SimTime::from_secs(*secs), Event::NodeChange(idx));
        }

        // --- Metrics ------------------------------------------------------------
        let mut requests = RequestOutcomes::new();
        let mut per_service: BTreeMap<ServiceId, RequestOutcomes> = config
            .services
            .iter()
            .map(|s| (s.id, RequestOutcomes::new()))
            .collect();
        let mut scaling = ScalingCounts::default();
        let mut cost = CostMeter::new();
        let mut replicas_ts = TimeSeries::new("replicas");
        let mut cpu_ts = TimeSeries::new("cpu-used-cores");
        let mut mem_ts = TimeSeries::new("mem-used-mb");

        // Per-tick availability roll calls cost one pass over all
        // containers, so they only run for scenarios that can actually
        // lose replicas to the infrastructure.
        let track_availability = !config.faults.is_empty() || !config.node_events.is_empty();
        let mut availability: BTreeMap<ServiceId, AvailabilityTracker> = config
            .services
            .iter()
            .map(|s| (s.id, AvailabilityTracker::new()))
            .collect();
        let mut ready_counts: Vec<u32> = Vec::new();

        // Trace tallies: per-service balancer routing deltas since the
        // last scaling period (emitted as `BalancerStats`, then reset)
        // plus run totals for the end-of-run counter dump.
        let mut balancer_deltas: Vec<(u64, u64)> = vec![(0, 0); config.services.len()];
        let mut balancer_total = (0u64, 0u64);
        let mut deaths_total = 0u64;
        let mut respawns_total = 0u64;
        let mut recovery_failures_total = 0u64;

        let horizon = SimTime::ZERO + config.duration;
        let mut engine = TickEngine::new(config.tick, horizon)?;
        let scale_period_secs = config.scale_period.as_secs();
        let mut tick_report = TickReport::default();
        // Cohort-mode scratch (reused across ticks) and the warp tally.
        let mut cohort_routes: Vec<(ContainerId, u64)> = Vec::new();
        let mut warp_ticks = 0u64;

        // --- Snapshot / resume ------------------------------------------------
        let cfg_digest = config_digest(config);
        let snapshot_policy = config.snapshot.clone();
        let mut next_snapshot_tick = snapshot_policy.as_ref().map_or(0, |p| p.every_ticks);
        let mut halted = false;

        if let Some(path) = &config.resume {
            // Overlay the snapshot onto the freshly built deterministic
            // setup above. The file is validated end to end (magic,
            // version, checksum, config digest, exact payload length)
            // before any state is committed by the all-or-nothing
            // sub-restores, so a bad file can never leave a partial run.
            let bytes = std::fs::read(path).map_err(SnapshotError::from)?;
            let mut r = SnapReader::open(&bytes)?;
            let found = r.get_u64()?;
            if found != cfg_digest {
                return Err(SnapshotError::ConfigMismatch {
                    expected: cfg_digest,
                    found,
                }
                .into());
            }
            let now = SimTime::from_micros(r.get_u64()?);
            let ticks_run = r.get_u64()?;
            engine.restore_clock(now, ticks_run);
            let seq = r.get_u64()?;
            if traced {
                trace.resume_at(seq);
            }
            cluster.snapshot_restore(&mut r)?;
            monitor.snapshot_restore(&mut r)?;
            balancer.snapshot_restore(&mut r)?;
            recovery.snapshot_restore(&mut r)?;
            injector.snapshot_restore(&mut r)?;
            restore_rngs(&mut r, &mut arrival_rngs)?;
            restore_rngs(&mut r, &mut demand_rngs)?;
            restore_rngs(&mut r, std::slice::from_mut(&mut resilience_rng))?;
            events = EventQueue::new();
            for _ in 0..r.get_usize()? {
                let time = SimTime::from_micros(r.get_u64()?);
                let event = match r.get_u8()? {
                    0 => Event::Arrival(r.get_usize()?),
                    1 => Event::Scale,
                    2 => Event::NodeChange(r.get_usize()?),
                    tag => {
                        return Err(SnapshotError::Corrupt(format!(
                            "unknown driver-event tag {tag}"
                        ))
                        .into());
                    }
                };
                events.schedule(time, event);
            }
            requests = read_outcomes(&mut r)?;
            let mut restored_per_service: BTreeMap<ServiceId, RequestOutcomes> = BTreeMap::new();
            for _ in 0..r.get_usize()? {
                let svc = ServiceId::new(r.get_u32()?);
                restored_per_service.insert(svc, read_outcomes(&mut r)?);
            }
            per_service = restored_per_service;
            scaling = ScalingCounts {
                vertical: r.get_u64()?,
                spawns: r.get_u64()?,
                removals: r.get_u64()?,
            };
            cost =
                CostMeter::from_raw_parts((r.get_f64()?, r.get_f64()?, r.get_f64()?, r.get_f64()?));
            read_series_into(&mut r, &mut replicas_ts)?;
            read_series_into(&mut r, &mut cpu_ts)?;
            read_series_into(&mut r, &mut mem_ts)?;
            let mut restored_avail: BTreeMap<ServiceId, AvailabilityTracker> = BTreeMap::new();
            for _ in 0..r.get_usize()? {
                let svc = ServiceId::new(r.get_u32()?);
                let parts = (
                    r.get_f64()?,
                    r.get_f64()?,
                    r.get_u64()?,
                    r.get_u64()?,
                    r.get_f64()?,
                    r.get_opt_f64()?,
                    r.get_u64()?,
                    r.get_u64()?,
                    r.get_u64()?,
                );
                restored_avail.insert(svc, AvailabilityTracker::from_raw_parts(parts));
            }
            availability = restored_avail;
            let n = r.get_usize()?;
            if n != balancer_deltas.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "snapshot carries {n} balancer tallies, scenario has {} services",
                    balancer_deltas.len()
                ))
                .into());
            }
            for delta in balancer_deltas.iter_mut() {
                *delta = (r.get_u64()?, r.get_u64()?);
            }
            balancer_total = (r.get_u64()?, r.get_u64()?);
            deaths_total = r.get_u64()?;
            respawns_total = r.get_u64()?;
            recovery_failures_total = r.get_u64()?;
            warp_ticks = r.get_u64()?;
            // Graph-tracker state (presence is pinned by the config
            // digest, but the tag is still validated).
            match (r.get_u8()?, graph_tracker.as_mut()) {
                (0, None) => {}
                (1, Some(tracker)) => tracker.snapshot_restore(&mut r)?,
                (tag, tracker) => {
                    return Err(SnapshotError::Corrupt(format!(
                        "graph-state tag {tag} does not match scenario (graph {})",
                        if tracker.is_some() { "on" } else { "off" }
                    ))
                    .into());
                }
            }
            r.expect_done()?;
            if let Some(policy) = &snapshot_policy {
                next_snapshot_tick =
                    (engine.ticks_run() / policy.every_ticks + 1) * policy.every_ticks;
            }
        }

        while !engine.finished() {
            let outcome = engine.step(|now, dt| {
                // 0. Fault injection strikes at the start of the tick, in the
                // serial phase (never inside the parallel node workers), so
                // chaos runs stay bit-identical at any parallelism setting.
                if !injector.drained() {
                    for failure in injector.apply_due_traced(&mut cluster, now, trace) {
                        record_failure(
                            &mut requests,
                            &mut per_service,
                            graph_tracker.as_mut(),
                            &failure,
                            &mut resilience_rng,
                            trace,
                            traced,
                        );
                    }
                }

                // 1. Deliver due events at the start of the tick.
                while let Some((event_time, event)) = events.pop_due(now) {
                    match event {
                        Event::Arrival(idx) => {
                            let service = &config.services[idx];
                            // Overload shedding: at or above the in-flight
                            // watermark the root is dropped unissued (counted
                            // as shed, not failed) so queued work can drain.
                            // The watermark reads serial-phase cluster state,
                            // so the decision is identical at any worker
                            // count; the skipped demand draw is deterministic
                            // per config for the same reason.
                            let shed = match graph_tracker.as_mut() {
                                Some(t) if t.sheds() => {
                                    let in_flight = cluster.service_in_flight(service.id);
                                    if in_flight >= t.shed_watermark() {
                                        t.record_shed(idx, 1, in_flight, event_time, trace, traced);
                                        true
                                    } else {
                                        false
                                    }
                                }
                                _ => false,
                            };
                            if !shed {
                                requests.record_issued();
                                let outcomes =
                                    per_service.get_mut(&service.id).expect("known service");
                                outcomes.record_issued();
                                let mut request =
                                    service.make_request(event_time, &mut demand_rngs[idx]);
                                // In graph mode every arrival opens a root; a
                                // request the balancer or admission rejects
                                // either retries (resilience on) or fails it
                                // on the spot (seal resolves roots that
                                // registered no hop). Entry hops inherit
                                // `min(service timeout, deadline budget)`.
                                let root = graph_tracker
                                    .as_mut()
                                    .map(|t| t.begin_root(idx, event_time, 1));
                                let entry_hop = root.map(|root| {
                                    let t = graph_tracker.as_mut().expect("root implies tracker");
                                    request.timeout =
                                        t.hop_timeout(root, event_time, request.timeout);
                                    PendingHop {
                                        service: idx,
                                        depth: 0,
                                        root,
                                        count: 1,
                                        cpu_secs: request.cpu_secs,
                                        mem_mb: request.mem.0,
                                        megabits: request.megabits_out,
                                        disk_megabits: request.disk_megabits,
                                        arrival: event_time,
                                        attempt: 0,
                                        policy: 0,
                                    }
                                });
                                match balancer.route(&cluster, service.id, now) {
                                    Some(target) => {
                                        balancer_deltas[idx].0 += 1;
                                        balancer_total.0 += 1;
                                        match cluster.admit_request(target, request, now) {
                                            Ok(id) => {
                                                if let (Some(t), Some(hop)) =
                                                    (graph_tracker.as_mut(), entry_hop.as_ref())
                                                {
                                                    t.register_hop(hop.root, id.index(), hop);
                                                }
                                                balancer.record_success(target, now, trace);
                                            }
                                            Err(_) => {
                                                requests.record_queue_abort_failure();
                                                outcomes.record_queue_abort_failure();
                                                // Feeds the replica's circuit breaker
                                                // (no-op for the live-mode balancer).
                                                balancer.record_failure(target, now, trace);
                                                if let (Some(t), Some(hop)) =
                                                    (graph_tracker.as_mut(), entry_hop.as_ref())
                                                {
                                                    t.on_unadmitted(
                                                        hop,
                                                        1,
                                                        now,
                                                        &mut resilience_rng,
                                                        trace,
                                                        traced,
                                                    );
                                                }
                                            }
                                        }
                                    }
                                    None => {
                                        balancer_deltas[idx].1 += 1;
                                        balancer_total.1 += 1;
                                        requests.record_queue_abort_failure();
                                        outcomes.record_queue_abort_failure();
                                        if let (Some(t), Some(hop)) =
                                            (graph_tracker.as_mut(), entry_hop.as_ref())
                                        {
                                            t.on_unadmitted(
                                                hop,
                                                1,
                                                now,
                                                &mut resilience_rng,
                                                trace,
                                                traced,
                                            );
                                        }
                                    }
                                }
                                if let (Some(t), Some(root)) = (graph_tracker.as_mut(), root) {
                                    t.seal_root(root);
                                }
                            }
                            let next =
                                arrivals[idx].next_arrival(event_time, &mut arrival_rngs[idx]);
                            if next < SimTime::MAX && next < horizon {
                                events.schedule(next, Event::Arrival(idx));
                            }
                        }
                        Event::NodeChange(idx) => {
                            let (_, event) = &config.node_events[idx];
                            match event {
                                NodeEvent::Decommission(node_idx) => {
                                    let failures: Vec<FailedRequest> = cluster
                                        .decommission_node(node_ids[*node_idx], now)
                                        .unwrap_or_default();
                                    for failure in &failures {
                                        record_failure(
                                            &mut requests,
                                            &mut per_service,
                                            graph_tracker.as_mut(),
                                            failure,
                                            &mut resilience_rng,
                                            trace,
                                            traced,
                                        );
                                    }
                                }
                                NodeEvent::Commission(spec) => {
                                    cluster.add_node(*spec);
                                }
                            }
                        }
                        Event::Scale => {
                            // Muted NodeManagers (stat outages) leave their
                            // containers on stale usage this period.
                            monitor.set_stat_outages(injector.muted_nodes(now));
                            let report = monitor.run_period_traced(
                                &mut cluster,
                                now,
                                scale_period_secs,
                                trace,
                            );
                            for action in &report.applied {
                                use crate::actions::ScalingAction;
                                match action {
                                    ScalingAction::Update { .. }
                                    | ScalingAction::SetNetCap { .. } => {
                                        scaling.vertical += 1;
                                    }
                                    ScalingAction::Spawn { .. } => scaling.spawns += 1,
                                    ScalingAction::Remove { .. } => scaling.removals += 1,
                                }
                            }
                            for failure in &report.removal_failures {
                                record_failure(
                                    &mut requests,
                                    &mut per_service,
                                    graph_tracker.as_mut(),
                                    failure,
                                    &mut resilience_rng,
                                    trace,
                                    traced,
                                );
                            }

                            // Replicas that died underneath the platform are
                            // respawned through the recovery path (placement +
                            // capped exponential backoff).
                            deaths_total += report.dead_replicas.len() as u64;
                            for (service, _) in &report.dead_replicas {
                                if let Some(t) = availability.get_mut(service) {
                                    t.record_death();
                                }
                            }
                            let recovered =
                                recovery.run_traced(&mut cluster, &templates, now, trace);
                            respawns_total += recovered.respawned.len() as u64;
                            recovery_failures_total += recovered.failed.len() as u64;
                            for (service, _) in &recovered.respawned {
                                if let Some(t) = availability.get_mut(service) {
                                    t.record_respawn();
                                }
                            }
                            for service in &recovered.failed {
                                if let Some(t) = availability.get_mut(service) {
                                    t.record_recovery_failure();
                                }
                            }

                            // The balancer hears the period's final replica
                            // roll call (post scaling + recovery). Snapshot
                            // mode routes off this until the next period;
                            // live mode ignores it.
                            balancer.refresh(&cluster, &service_ids);

                            // Periodic samples for the report.
                            let secs = now.as_secs();
                            replicas_ts.push(secs, report.view.total_replicas() as f64);
                            let cpu_used: f64 = report
                                .view
                                .services
                                .iter()
                                .map(|s| s.total_cpu_used().get())
                                .sum();
                            let mem_used: f64 = report
                                .view
                                .services
                                .iter()
                                .map(|s| s.total_mem_used().get())
                                .sum();
                            cpu_ts.push(secs, cpu_used);
                            mem_ts.push(secs, mem_used);

                            let allocated: f64 = report
                                .view
                                .services
                                .iter()
                                .flat_map(|s| s.replicas.iter())
                                .map(|r| r.cpu_requested.get())
                                .sum();
                            let containers = report.view.total_replicas();
                            let busy_nodes = report
                                .view
                                .nodes
                                .iter()
                                .filter(|n| !n.hosted_services.is_empty())
                                .count();
                            cost.record_interval(
                                scale_period_secs,
                                allocated,
                                containers,
                                busy_nodes,
                            );

                            // Periodic trace snapshots: per-node allocator
                            // headroom, then this period's routing deltas.
                            if traced {
                                cluster.trace_pressure(now, trace);
                                for (svc_idx, service) in config.services.iter().enumerate() {
                                    let (routed, rejected) = balancer_deltas[svc_idx];
                                    trace.emit(
                                        now,
                                        EventKind::BalancerStats {
                                            service: service.id.index(),
                                            routed,
                                            rejected,
                                        },
                                    );
                                    balancer_deltas[svc_idx] = (0, 0);
                                }
                            }

                            events.schedule(now + config.scale_period, Event::Scale);
                        }
                    }
                }

                // 1b. Cohort-mode arrivals: one Poisson draw per service per
                // tick, carried as a single flow cohort and waterfilled
                // across replicas. The draw uses the same arrival/demand RNG
                // streams as per-request mode (one count draw, one profile
                // draw), so seeds stay comparable across services.
                if config.cohort_arrivals {
                    let dt_secs = dt.as_secs();
                    for (idx, service) in config.services.iter().enumerate() {
                        if !takes_client_load(idx, &graph_tracker) {
                            continue;
                        }
                        let mean = service.load.rate_at(now) * dt_secs;
                        let n = arrival_rngs[idx].poisson(mean);
                        if n == 0 {
                            continue;
                        }
                        // Overload shedding (see the per-request arm): the
                        // whole tick's cohort is dropped unissued when the
                        // entry point is at or above its in-flight watermark.
                        if let Some(t) = graph_tracker.as_mut() {
                            if t.sheds() {
                                let in_flight = cluster.service_in_flight(service.id);
                                if in_flight >= t.shed_watermark() {
                                    t.record_shed(idx, n, in_flight, now, trace, traced);
                                    continue;
                                }
                            }
                        }
                        requests.record_issued_n(n);
                        let outcomes = per_service.get_mut(&service.id).expect("known service");
                        outcomes.record_issued_n(n);
                        let mut cohort = service.make_cohort(now, n, &mut demand_rngs[idx]);
                        let root = graph_tracker.as_mut().map(|t| t.begin_root(idx, now, n));
                        let entry_hop = root.map(|root| {
                            let t = graph_tracker.as_mut().expect("root implies tracker");
                            cohort.timeout = t.hop_timeout(root, now, cohort.timeout);
                            PendingHop {
                                service: idx,
                                depth: 0,
                                root,
                                count: n,
                                cpu_secs: cohort.cpu_secs,
                                mem_mb: cohort.mem.0,
                                megabits: cohort.megabits_out,
                                disk_megabits: cohort.disk_megabits,
                                arrival: now,
                                attempt: 0,
                                policy: 0,
                            }
                        });
                        cohort_routes.clear();
                        let unrouted =
                            balancer.route_cohort(&cluster, service.id, n, now, &mut cohort_routes);
                        let mut routed_members = 0u64;
                        let mut rejected_members = unrouted;
                        for &(target, members) in cohort_routes.iter() {
                            let mut share = cohort.clone();
                            share.count = members;
                            match cluster.admit_cohort(target, share, now) {
                                Ok(base) => {
                                    routed_members += members;
                                    if let (Some(t), Some(hop)) =
                                        (graph_tracker.as_mut(), entry_hop.as_ref())
                                    {
                                        t.register_hop(hop.root, base.index(), hop);
                                    }
                                    balancer.record_success(target, now, trace);
                                }
                                Err(_) => {
                                    rejected_members += members;
                                    requests.record_queue_abort_failures(members);
                                    outcomes.record_queue_abort_failures(members);
                                    // Feeds the replica's circuit breaker (no-op
                                    // for the live-mode balancer).
                                    balancer.record_failure(target, now, trace);
                                }
                            }
                        }
                        if unrouted > 0 {
                            requests.record_queue_abort_failures(unrouted);
                            outcomes.record_queue_abort_failures(unrouted);
                        }
                        if let (Some(t), Some(hop)) = (graph_tracker.as_mut(), entry_hop.as_ref()) {
                            // Lost members either re-queue as one retry hop
                            // (resilience on, retryable) or fail the whole
                            // root; a root with no admitted hop and no
                            // queued retry resolves right here.
                            if rejected_members > 0 {
                                t.on_unadmitted(
                                    hop,
                                    rejected_members,
                                    now,
                                    &mut resilience_rng,
                                    trace,
                                    traced,
                                );
                            }
                            t.seal_root(hop.root);
                        }
                        balancer_deltas[idx].0 += routed_members;
                        balancer_deltas[idx].1 += rejected_members;
                        balancer_total.0 += routed_members;
                        balancer_total.1 += rejected_members;
                        if traced {
                            trace.emit(
                                now,
                                EventKind::CohortFlow {
                                    service: service.id.index(),
                                    count: n,
                                    routed: routed_members,
                                    rejected: rejected_members,
                                },
                            );
                        }
                    }
                }

                // 1c. Graph mode: admit the child hops queued by hops that
                // completed last tick. Children ride the cohort machinery
                // regardless of arrival mode (one aggregate record per
                // admitted share, valid for count = 1), and their arrival
                // time is the parent's finish — the gap until `now` is the
                // inter-tier queueing delay the spans report.
                if graph_tracker
                    .as_ref()
                    .is_some_and(GraphTracker::has_pending)
                {
                    let tracker = graph_tracker.as_mut().expect("checked above");
                    let pending = tracker.take_due(now);
                    for hop in &pending {
                        let service = &config.services[hop.service];
                        let svc_idx = hop.service;
                        requests.record_issued_n(hop.count);
                        let outcomes = per_service.get_mut(&service.id).expect("known service");
                        outcomes.record_issued_n(hop.count);
                        let child = Request::new(
                            service.id,
                            hop.arrival,
                            hop.cpu_secs,
                            MemMb(hop.mem_mb),
                            hop.megabits,
                        )
                        .with_disk(hop.disk_megabits)
                        .with_timeout(tracker.hop_timeout(
                            hop.root,
                            hop.arrival,
                            service.timeout,
                        ));
                        let cohort =
                            Cohort::from_request(&child, hop.count).with_attempt(hop.attempt);
                        cohort_routes.clear();
                        let unrouted = balancer.route_cohort(
                            &cluster,
                            service.id,
                            hop.count,
                            now,
                            &mut cohort_routes,
                        );
                        let mut routed_members = 0u64;
                        let mut rejected_members = unrouted;
                        for &(target, members) in cohort_routes.iter() {
                            let mut share = cohort.clone();
                            share.count = members;
                            match cluster.admit_cohort(target, share, now) {
                                Ok(base) => {
                                    routed_members += members;
                                    tracker.register_hop(hop.root, base.index(), hop);
                                    balancer.record_success(target, now, trace);
                                }
                                Err(_) => {
                                    rejected_members += members;
                                    requests.record_queue_abort_failures(members);
                                    outcomes.record_queue_abort_failures(members);
                                    balancer.record_failure(target, now, trace);
                                }
                            }
                        }
                        if unrouted > 0 {
                            requests.record_queue_abort_failures(unrouted);
                            outcomes.record_queue_abort_failures(unrouted);
                        }
                        if rejected_members > 0 {
                            // Retryable rejections re-queue (counting toward
                            // the root's pending total) before the settle
                            // below, so the root cannot resolve under them.
                            tracker.on_unadmitted(
                                hop,
                                rejected_members,
                                now,
                                &mut resilience_rng,
                                trace,
                                traced,
                            );
                        }
                        // The queued entry itself is settled last, so the
                        // root cannot resolve before its shares register.
                        tracker.settle_queued(hop.root);
                        balancer_deltas[svc_idx].0 += routed_members;
                        balancer_deltas[svc_idx].1 += rejected_members;
                        balancer_total.0 += routed_members;
                        balancer_total.1 += rejected_members;
                    }
                    tracker.return_pending_scratch(pending);
                }

                // 2. Advance the resource model (reusing one report buffer
                // across ticks keeps the hot loop allocation-free).
                cluster.advance_into(now, dt, &mut tick_report);
                let had_outcomes =
                    !tick_report.completed.is_empty() || !tick_report.failed.is_empty();
                for done in tick_report.completed.drain(..) {
                    requests.record_completed_n(done.response_time.as_secs(), done.count);
                    if let Some(out) = per_service.get_mut(&done.service) {
                        out.record_completed_n(done.response_time.as_secs(), done.count);
                    }
                    if let Some(tracker) = graph_tracker.as_mut() {
                        // Journals the hop's span, queues its children for
                        // next tick, and resolves the root if this was its
                        // last outstanding hop.
                        tracker.on_completed(&done, &config.services, trace, traced);
                    }
                }
                for failed in tick_report.failed.drain(..) {
                    record_failure(
                        &mut requests,
                        &mut per_service,
                        graph_tracker.as_mut(),
                        &failed,
                        &mut resilience_rng,
                        trace,
                        traced,
                    );
                }

                // 3. Availability roll call: a service is up in this tick iff
                // at least one ready replica exists.
                if track_availability {
                    cluster.ready_replicas_into(now, &mut ready_counts);
                    let dt_secs = dt.as_secs();
                    for (service, tracker) in availability.iter_mut() {
                        let up = ready_counts.get(service.as_usize()).is_some_and(|&n| n > 0);
                        tracker.record_tick(dt_secs, up);
                    }
                }

                // 4. Time warp: when this tick ended with nothing in flight
                // and nothing due before the next event boundary, advance the
                // idle stretch in closed form and tell the engine to skip it.
                // The boundary is the earliest of the next queued event (a
                // Scale event is always queued), the next fault or recovery,
                // and the horizon; in cohort mode the span is additionally
                // shrunk until the load patterns are provably silent over it.
                if config.time_warp
                    && !had_outcomes
                    && cluster.total_in_flight() == 0
                    && graph_tracker.as_ref().is_none_or(GraphTracker::is_idle)
                {
                    let end = now + dt;
                    let mut boundary = events.peek_time().unwrap_or(horizon).min(horizon);
                    if let Some(due) = injector.next_due_time() {
                        boundary = boundary.min(due);
                    }
                    if boundary > end {
                        let dt_us = dt.as_micros().max(1);
                        // Number of tick starts in [end, boundary): ticks
                        // starting at or past the boundary must run normally.
                        let mut k = (boundary - end).as_micros().div_ceil(dt_us);
                        if config.cohort_arrivals {
                            while k > 0 {
                                let span_end = end + dt * k;
                                let quiet = config
                                    .services
                                    .iter()
                                    .all(|s| s.load.max_rate_in(end, span_end) == 0.0);
                                if quiet {
                                    break;
                                }
                                k /= 2;
                            }
                        }
                        let warped = cluster.advance_warp(end, dt, k);
                        if warped > 0 {
                            warp_ticks += warped;
                            if track_availability {
                                // Liveness is constant across the warped span
                                // (advance_warp clamps at startup
                                // boundaries), so one roll call covers it.
                                cluster.ready_replicas_into(end, &mut ready_counts);
                                let span_secs = dt.as_secs() * warped as f64;
                                for (service, tracker) in availability.iter_mut() {
                                    let up = ready_counts
                                        .get(service.as_usize())
                                        .is_some_and(|&n| n > 0);
                                    tracker.record_tick(span_secs, up);
                                }
                            }
                            if traced {
                                trace.emit(
                                    end,
                                    EventKind::TimeWarp {
                                        ticks: warped,
                                        span_us: dt.as_micros() * warped,
                                    },
                                );
                            }
                            return TickOutcome::SkipAhead(warped);
                        }
                    }
                }
                TickOutcome::Continue
            })?;

            // Snapshot at the tick boundary the body just crossed. `>=`
            // plus the recompute below lets a time-warp jump that
            // overshot a boundary snapshot once at its landing tick.
            if let Some(policy) = &snapshot_policy {
                if engine.ticks_run() >= next_snapshot_tick && !engine.finished() {
                    let tick = engine.ticks_run();
                    let boundary = engine.now();
                    // The Snapshot event is emitted *before* the state is
                    // serialized, so the captured trace cursor already
                    // counts it: an interrupted journal ends exactly
                    // where the resumed journal begins.
                    if traced {
                        trace.emit(
                            boundary,
                            EventKind::Snapshot {
                                tick,
                                now_us: boundary.as_micros(),
                            },
                        );
                    }
                    // Replay any lazily-parked idle ticks so the
                    // serialized windows/EWMAs match a full-scan run.
                    cluster.flush_pending();
                    let writer = serialize_state(
                        cfg_digest,
                        &DriverState {
                            engine: &engine,
                            trace_seq: trace.total_emitted(),
                            cluster: &cluster,
                            monitor: &monitor,
                            balancer: &balancer,
                            recovery: &recovery,
                            injector: &injector,
                            arrival_rngs: &arrival_rngs,
                            demand_rngs: &demand_rngs,
                            resilience_rng: &resilience_rng,
                            events: &events,
                            requests: &requests,
                            per_service: &per_service,
                            scaling: &scaling,
                            cost: &cost,
                            replicas_ts: &replicas_ts,
                            cpu_ts: &cpu_ts,
                            mem_ts: &mem_ts,
                            availability: &availability,
                            balancer_deltas: &balancer_deltas,
                            balancer_total,
                            deaths_total,
                            respawns_total,
                            recovery_failures_total,
                            warp_ticks,
                            graph: graph_tracker.as_ref(),
                        },
                    );
                    std::fs::create_dir_all(&policy.dir).map_err(SnapshotError::from)?;
                    std::fs::write(policy.file_for(tick), writer.finish())
                        .map_err(SnapshotError::from)?;
                    next_snapshot_tick = (tick / policy.every_ticks + 1) * policy.every_ticks;
                    if policy.halt_after_first {
                        halted = true;
                    }
                }
            }
            if halted || matches!(outcome, TickOutcome::Stop) {
                break;
            }
        }

        // Control-plane health counters: the Monitor's control plane
        // tallies the report/actuation/safe-mode side; the balancer owns
        // the breaker tally.
        let mut control_plane_stats = monitor
            .control_plane()
            .map(|cp| cp.stats)
            .unwrap_or_default();
        control_plane_stats.breaker_opens = balancer.breaker_opens();

        // End-of-horizon state digest: cheap bit-exactness witness for
        // the resume-equivalence battery. Skipped for halted runs (their
        // state is mid-flight by design).
        // Any nodes still parked at the horizon replay their pending
        // idle ticks now, so end-of-run reads (and the digest below)
        // match the full-scan engine exactly.
        cluster.flush_pending();
        let state_digest = if !halted
            && engine.finished()
            && (config.snapshot.is_some() || config.resume.is_some())
        {
            Some(
                serialize_state(
                    cfg_digest,
                    &DriverState {
                        engine: &engine,
                        trace_seq: trace.total_emitted(),
                        cluster: &cluster,
                        monitor: &monitor,
                        balancer: &balancer,
                        recovery: &recovery,
                        injector: &injector,
                        arrival_rngs: &arrival_rngs,
                        demand_rngs: &demand_rngs,
                        resilience_rng: &resilience_rng,
                        events: &events,
                        requests: &requests,
                        per_service: &per_service,
                        scaling: &scaling,
                        cost: &cost,
                        replicas_ts: &replicas_ts,
                        cpu_ts: &cpu_ts,
                        mem_ts: &mem_ts,
                        availability: &availability,
                        balancer_deltas: &balancer_deltas,
                        balancer_total,
                        deaths_total,
                        respawns_total,
                        recovery_failures_total,
                        warp_ticks,
                        graph: graph_tracker.as_ref(),
                    },
                )
                .digest(),
            )
        } else {
            None
        };

        // Final counter dump through the metrics registry: names register
        // once, in a fixed order, so the journal tail is deterministic by
        // construction. A halted (snapshot-and-stop) run skips it: the
        // resumed run emits the dump at the true horizon, keeping the
        // concatenated journal identical to an uninterrupted one. Graph
        // counters are appended only for graph scenarios so a graph-free
        // journal stays byte-identical to pre-graph builds.
        if traced && !halted {
            let mut registry = MetricsRegistry::new();
            let mut totals: Vec<(&'static str, u64)> = vec![
                ("requests.issued", requests.issued),
                ("requests.completed", requests.completed),
                ("failures.connection", requests.failures.connection()),
                ("failures.removal", requests.failures.removal),
                ("scaling.vertical", scaling.vertical),
                ("scaling.spawns", scaling.spawns),
                ("scaling.removals", scaling.removals),
                ("balancer.routed", balancer_total.0),
                ("balancer.rejected", balancer_total.1),
                ("recovery.respawns", respawns_total),
                ("recovery.failures", recovery_failures_total),
                ("replica.deaths", deaths_total),
                (
                    "controlplane.reports_lost",
                    control_plane_stats.reports_lost,
                ),
                (
                    "controlplane.reports_late",
                    control_plane_stats.reports_late,
                ),
                (
                    "controlplane.reports_duplicated",
                    control_plane_stats.reports_duplicated,
                ),
                (
                    "controlplane.actuation_failures",
                    control_plane_stats.actuation_failures,
                ),
                (
                    "controlplane.actuation_retries",
                    control_plane_stats.actuation_retries,
                ),
                (
                    "controlplane.actuations_deduped",
                    control_plane_stats.actuations_deduped,
                ),
                (
                    "controlplane.actuations_abandoned",
                    control_plane_stats.actuations_abandoned,
                ),
                (
                    "controlplane.breaker_opens",
                    control_plane_stats.breaker_opens,
                ),
                (
                    "controlplane.safe_mode_periods",
                    control_plane_stats.safe_mode_periods,
                ),
                (
                    "controlplane.stale_vetoes",
                    control_plane_stats.stale_vetoes,
                ),
                ("timewarp.ticks_skipped", warp_ticks),
            ];
            if let Some(tracker) = graph_tracker.as_ref() {
                let stats = tracker.entry_stats();
                totals.push((
                    "graph.roots_completed",
                    stats.iter().map(|s| s.roots_completed).sum(),
                ));
                totals.push((
                    "graph.roots_failed",
                    stats.iter().map(|s| s.roots_failed).sum(),
                ));
                // Resilience counters only exist for resilience-enabled
                // scenarios, so a resilience-free journal stays
                // byte-identical to builds without the layer.
                if config.resilience.enabled {
                    let rs = tracker.resilience_stats();
                    totals.push(("retry.attempts", rs.retries));
                    totals.push(("retry.members", rs.retried_members));
                    totals.push(("retry.budget_exhausted", rs.budget_exhausted));
                    totals.push(("retry.deadline_exceeded", rs.deadline_exceeded));
                    totals.push(("shed.roots", rs.shed_roots));
                    totals.push(("shed.members", rs.shed_members));
                    totals.push(("goodput.members", rs.goodput_members));
                    totals.push(("wasted.members", rs.wasted_members));
                }
            }
            for (name, value) in totals {
                let id = registry.counter(name);
                registry.add(id, value);
            }
            for (name, value) in registry.counters() {
                trace.emit(horizon, EventKind::Counter { name, value });
            }
        }

        let resilience = graph_tracker
            .as_ref()
            .map(|t| t.resilience_stats())
            .unwrap_or_default();
        Ok(RunReport {
            name: config.name.clone(),
            algorithm: config.algorithm,
            seeds: vec![config.seed],
            requests,
            per_service,
            scaling,
            cost,
            replicas: replicas_ts,
            cpu_used: cpu_ts,
            mem_used: mem_ts,
            availability: availability
                .into_iter()
                .map(|(s, t)| (s, t.finalize()))
                .collect(),
            faults: injector.log(),
            control_plane: control_plane_stats,
            warp_ticks,
            entry_points: graph_tracker
                .map(GraphTracker::into_entry_stats)
                .unwrap_or_default(),
            resilience,
            state_digest,
        })
    }

    /// Runs the scenario once per seed and merges the outcomes — the
    /// paper's "results were averaged over 5 runs".
    ///
    /// Time series are kept from the first seed (they illustrate one run;
    /// outcome statistics aggregate all).
    ///
    /// # Errors
    ///
    /// Propagates the first failing run's error. `seeds` must not be
    /// empty.
    pub fn run_averaged(config: &ScenarioConfig, seeds: &[u64]) -> Result<RunReport, CoreError> {
        let Some((&first_seed, rest)) = seeds.split_first() else {
            return Err(CoreError::InvalidScenario("no seeds given".into()));
        };
        let mut config = config.clone();
        config.seed = first_seed;
        let mut merged = Self::run(&config)?;
        for &seed in rest {
            config.seed = seed;
            let run = Self::run(&config)?;
            merged.requests.merge(&run.requests);
            for (svc, outcomes) in run.per_service {
                merged
                    .per_service
                    .entry(svc)
                    .or_insert_with(RequestOutcomes::new)
                    .merge(&outcomes);
            }
            merged.scaling += run.scaling;
            for (svc, avail) in run.availability {
                merged.availability.entry(svc).or_default().merge(&avail);
            }
            merged.faults += run.faults;
            merged.control_plane += run.control_plane;
            merged.warp_ticks += run.warp_ticks;
            // Entry points come out in the same (ascending service)
            // order for every seed of one config.
            for (into, from) in merged.entry_points.iter_mut().zip(&run.entry_points) {
                into.merge(from);
            }
            merged.resilience += run.resilience;
            merged.seeds.push(seed);
        }
        if !rest.is_empty() {
            // A state digest witnesses one run's end state; a merged
            // report no longer corresponds to any single run.
            merged.state_digest = None;
        }
        Ok(merged)
    }
}

/// Digest of every configuration field that shapes the deterministic
/// simulation, via the fields' `Debug` forms. Excludes `parallelism`
/// (bit-identical at any worker count) and the snapshot/resume controls
/// themselves, so a resumed run may snapshot differently or run on more
/// workers than the run that wrote the file.
fn config_digest(config: &ScenarioConfig) -> u64 {
    let repr = format!(
        "{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}|{:?}|{:?}",
        config.name,
        config.seed,
        config.duration,
        config.tick,
        config.scale_period,
        config.nodes,
        config.services,
        config.initial_replicas,
        config.algorithm,
        config.hpa,
        config.hyscale,
        config.cluster,
        config.antagonists,
        config.node_events,
        config.faults,
        config.recovery,
        config.control_plane,
        config.cohort_arrivals,
        config.time_warp,
        config.graph,
        config.resilience,
    );
    fnv1a(repr.as_bytes())
}

/// Shared borrows of every piece of mutable run state a snapshot
/// captures, bundled so [`serialize_state`] has one coherent signature.
struct DriverState<'a> {
    engine: &'a TickEngine,
    trace_seq: u64,
    cluster: &'a Cluster,
    monitor: &'a Monitor,
    balancer: &'a LoadBalancer,
    recovery: &'a RecoveryManager,
    injector: &'a FaultInjector,
    arrival_rngs: &'a [SimRng],
    demand_rngs: &'a [SimRng],
    resilience_rng: &'a SimRng,
    events: &'a EventQueue<Event>,
    requests: &'a RequestOutcomes,
    per_service: &'a BTreeMap<ServiceId, RequestOutcomes>,
    scaling: &'a ScalingCounts,
    cost: &'a CostMeter,
    replicas_ts: &'a TimeSeries,
    cpu_ts: &'a TimeSeries,
    mem_ts: &'a TimeSeries,
    availability: &'a BTreeMap<ServiceId, AvailabilityTracker>,
    balancer_deltas: &'a [(u64, u64)],
    balancer_total: (u64, u64),
    deaths_total: u64,
    respawns_total: u64,
    recovery_failures_total: u64,
    warp_ticks: u64,
    graph: Option<&'a GraphTracker>,
}

/// Serializes the complete run state into an (unframed) snapshot payload.
/// [`SnapWriter::finish`] frames it; [`SnapWriter::digest`] turns it into
/// the end-of-run state digest. The read side is the resume overlay in
/// [`SimulationDriver::run_traced`]; the two must mirror exactly.
fn serialize_state(cfg_digest: u64, s: &DriverState<'_>) -> SnapWriter {
    let mut w = SnapWriter::new();
    w.put_u64(cfg_digest);
    w.put_u64(s.engine.now().as_micros());
    w.put_u64(s.engine.ticks_run());
    w.put_u64(s.trace_seq);
    s.cluster.snapshot_write(&mut w);
    s.monitor.snapshot_write(&mut w);
    s.balancer.snapshot_write(&mut w);
    s.recovery.snapshot_write(&mut w);
    s.injector.snapshot_write(&mut w);
    write_rngs(&mut w, s.arrival_rngs);
    write_rngs(&mut w, s.demand_rngs);
    write_rngs(&mut w, std::slice::from_ref(s.resilience_rng));
    let entries = s.events.entries_in_order();
    w.put_usize(entries.len());
    for (time, event) in entries {
        w.put_u64(time.as_micros());
        match *event {
            Event::Arrival(idx) => {
                w.put_u8(0);
                w.put_usize(idx);
            }
            Event::Scale => w.put_u8(1),
            Event::NodeChange(idx) => {
                w.put_u8(2);
                w.put_usize(idx);
            }
        }
    }
    write_outcomes(&mut w, s.requests);
    w.put_usize(s.per_service.len());
    for (&svc, outcomes) in s.per_service {
        w.put_u32(svc.index());
        write_outcomes(&mut w, outcomes);
    }
    w.put_u64(s.scaling.vertical);
    w.put_u64(s.scaling.spawns);
    w.put_u64(s.scaling.removals);
    let (core_secs, container_secs, busy_node_secs, elapsed_secs) = s.cost.raw_parts();
    w.put_f64(core_secs);
    w.put_f64(container_secs);
    w.put_f64(busy_node_secs);
    w.put_f64(elapsed_secs);
    write_series(&mut w, s.replicas_ts);
    write_series(&mut w, s.cpu_ts);
    write_series(&mut w, s.mem_ts);
    w.put_usize(s.availability.len());
    for (&svc, tracker) in s.availability {
        w.put_u32(svc.index());
        let parts = tracker.raw_parts();
        w.put_f64(parts.0);
        w.put_f64(parts.1);
        w.put_u64(parts.2);
        w.put_u64(parts.3);
        w.put_f64(parts.4);
        w.put_opt_f64(parts.5);
        w.put_u64(parts.6);
        w.put_u64(parts.7);
        w.put_u64(parts.8);
    }
    w.put_usize(s.balancer_deltas.len());
    for &(routed, rejected) in s.balancer_deltas {
        w.put_u64(routed);
        w.put_u64(rejected);
    }
    w.put_u64(s.balancer_total.0);
    w.put_u64(s.balancer_total.1);
    w.put_u64(s.deaths_total);
    w.put_u64(s.respawns_total);
    w.put_u64(s.recovery_failures_total);
    w.put_u64(s.warp_ticks);
    match s.graph {
        None => w.put_u8(0),
        Some(tracker) => {
            w.put_u8(1);
            tracker.snapshot_write(&mut w);
        }
    }
    w
}

/// Writes the internal states of a slice of RNG streams.
fn write_rngs(w: &mut SnapWriter, rngs: &[SimRng]) {
    w.put_usize(rngs.len());
    for rng in rngs {
        for word in rng.state() {
            w.put_u64(word);
        }
    }
}

/// Restores RNG streams written by [`write_rngs`] in place; the count
/// must match the scenario's stream count exactly.
fn restore_rngs(r: &mut SnapReader<'_>, rngs: &mut [SimRng]) -> Result<(), SnapshotError> {
    let n = r.get_usize()?;
    if n != rngs.len() {
        return Err(SnapshotError::Corrupt(format!(
            "snapshot carries {n} RNG streams, scenario expects {}",
            rngs.len()
        )));
    }
    for rng in rngs {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.get_u64()?;
        }
        *rng = SimRng::from_state(state);
    }
    Ok(())
}

/// Writes request outcomes including every response-time sample, so the
/// restored Welford accumulator is bit-exact (it is replay-order
/// deterministic).
fn write_outcomes(w: &mut SnapWriter, o: &RequestOutcomes) {
    w.put_u64(o.issued);
    w.put_u64(o.completed);
    w.put_u64(o.failures.removal);
    w.put_u64(o.failures.timeout);
    w.put_u64(o.failures.queue_abort);
    w.put_u64(o.failures.infra_death);
    let samples = o.response_times.samples();
    w.put_usize(samples.len());
    for &v in samples {
        w.put_f64(v);
    }
    w.put_u64(o.response_times.nan_dropped());
}

/// Reads outcomes written by [`write_outcomes`].
fn read_outcomes(r: &mut SnapReader<'_>) -> Result<RequestOutcomes, SnapshotError> {
    let mut o = RequestOutcomes::new();
    o.issued = r.get_u64()?;
    o.completed = r.get_u64()?;
    o.failures.removal = r.get_u64()?;
    o.failures.timeout = r.get_u64()?;
    o.failures.queue_abort = r.get_u64()?;
    o.failures.infra_death = r.get_u64()?;
    for _ in 0..r.get_usize()? {
        o.response_times.record(r.get_f64()?);
    }
    for _ in 0..r.get_u64()? {
        o.response_times.record(f64::NAN);
    }
    Ok(o)
}

/// Writes one time series as its `(secs, value)` points.
fn write_series(w: &mut SnapWriter, ts: &TimeSeries) {
    let points = ts.points();
    w.put_usize(points.len());
    for &(secs, value) in points {
        w.put_f64(secs);
        w.put_f64(value);
    }
}

/// Appends points written by [`write_series`] into a (fresh) series.
fn read_series_into(r: &mut SnapReader<'_>, ts: &mut TimeSeries) -> Result<(), SnapshotError> {
    for _ in 0..r.get_usize()? {
        let secs = r.get_f64()?;
        let value = r.get_f64()?;
        ts.push(secs, value);
    }
    Ok(())
}

/// Parses a `HYSCALE_PARALLELISM` value: a positive integer worker count.
///
/// Returns a descriptive error for anything else — empty strings,
/// non-numeric text, zero, negatives — so the caller can fail loudly
/// instead of silently running serial with a typo'd setting.
fn parse_parallelism(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("value is empty; expected a positive integer".into());
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err("0 workers is meaningless; use 1 for serial execution".into()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "{trimmed:?} is not a positive integer (e.g. HYSCALE_PARALLELISM=4)"
        )),
    }
}

/// Reads the worker count from `HYSCALE_PARALLELISM`, defaulting to 1
/// (serial) when unset.
///
/// # Panics
///
/// Panics when the variable is set to an invalid value. A typo like
/// `HYSCALE_PARALLELISM=four` used to fall back to serial silently, which
/// defeats the CI bit-identity gate (the parallel re-run would quietly
/// test nothing); failing loudly is the only safe behaviour.
fn parallelism_from_env() -> usize {
    match std::env::var("HYSCALE_PARALLELISM") {
        Ok(raw) => match parse_parallelism(&raw) {
            Ok(n) => n,
            Err(why) => panic!("invalid HYSCALE_PARALLELISM={raw:?}: {why}"),
        },
        Err(_) => 1,
    }
}

/// Fluent construction of [`ScenarioConfig`]s.
///
/// # Example
///
/// ```
/// use hyscale_core::{AlgorithmKind, ScenarioBuilder};
/// use hyscale_workload::{LoadPattern, ServiceProfile};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let report = ScenarioBuilder::new("smoke")
///     .nodes(2)
///     .services(1, ServiceProfile::CpuBound, LoadPattern::Constant { rate: 2.0 })
///     .duration_secs(30.0)
///     .algorithm(AlgorithmKind::Kubernetes)
///     .run()?;
/// assert!(report.requests.issued > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    config: ScenarioConfig,
    next_service_index: u32,
}

impl ScenarioBuilder {
    /// Starts a scenario with paper-style defaults: 100 ms tick, 5 s
    /// scaling period, 10-minute duration, seed 1, HyScaleCPU.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioBuilder {
            config: ScenarioConfig {
                name: name.into(),
                seed: 1,
                duration: SimDuration::from_secs(600.0),
                tick: SimDuration::from_millis(100),
                scale_period: SimDuration::from_secs(5.0),
                nodes: Vec::new(),
                services: Vec::new(),
                initial_replicas: 1,
                algorithm: AlgorithmKind::HyScaleCpu,
                hpa: HpaConfig::default(),
                hyscale: HyScaleConfig::default(),
                cluster: ClusterConfig::default(),
                antagonists: Vec::new(),
                node_events: Vec::new(),
                faults: FaultPlan::new(),
                recovery: RecoveryConfig::default(),
                control_plane: ControlPlaneConfig::default(),
                // Results are bit-identical at any worker count, so CI
                // re-runs the whole suite with HYSCALE_PARALLELISM=4 to
                // prove it; explicit .parallelism() still overrides.
                parallelism: parallelism_from_env(),
                cohort_arrivals: false,
                time_warp: false,
                graph: None,
                resilience: ResilienceConfig::disabled(),
                snapshot: None,
                resume: None,
            },
            next_service_index: 0,
        }
    }

    /// Adds `count` uniform worker nodes (the paper's 4-core/8 GB boxes).
    pub fn nodes(mut self, count: usize) -> Self {
        self.config
            .nodes
            .extend(std::iter::repeat_n(NodeSpec::uniform_worker(), count));
        self
    }

    /// Adds `count` nodes of a specific hardware spec.
    pub fn nodes_with_spec(mut self, count: usize, spec: NodeSpec) -> Self {
        self.config.nodes.extend(std::iter::repeat_n(spec, count));
        self
    }

    /// Adds `count` synthetic services of `profile` under `load`.
    pub fn services(mut self, count: usize, profile: ServiceProfile, load: LoadPattern) -> Self {
        for _ in 0..count {
            let spec = ServiceSpec::synthetic(self.next_service_index, profile, load.clone());
            self.next_service_index += 1;
            self.config.services.push(spec);
        }
        self
    }

    /// Adds one fully custom service (its id must be unique).
    pub fn service(mut self, spec: ServiceSpec) -> Self {
        self.next_service_index = self.next_service_index.max(spec.id.index() + 1);
        self.config.services.push(spec);
        self
    }

    /// Adds an antagonist (stress) container on the node at `node_idx`.
    pub fn antagonist(mut self, node_idx: usize, spec: ContainerSpec) -> Self {
        self.config.antagonists.push((node_idx, spec));
        self
    }

    /// Schedules a machine addition or removal at `secs` into the run.
    pub fn node_event(mut self, secs: f64, event: NodeEvent) -> Self {
        self.config.node_events.push((secs, event));
        self
    }

    /// Installs a fault plan (chaos schedule) for the run.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.config.faults = plan;
        self
    }

    /// Overrides the replica-recovery tunables.
    pub fn recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.config.recovery = recovery;
        self
    }

    /// Installs a control-plane degradation model (lossy stats, failable
    /// actuation) and its resilience machinery for the run.
    pub fn control_plane(mut self, control_plane: ControlPlaneConfig) -> Self {
        self.config.control_plane = control_plane;
        self
    }

    /// Sets the simulated duration in seconds.
    pub fn duration_secs(mut self, secs: f64) -> Self {
        self.config.duration = SimDuration::from_secs(secs);
        self
    }

    /// Sets the Monitor's scaling period in seconds.
    pub fn scale_period_secs(mut self, secs: f64) -> Self {
        self.config.scale_period = SimDuration::from_secs(secs);
        self
    }

    /// Sets the resource-model tick in milliseconds.
    pub fn tick_millis(mut self, millis: u64) -> Self {
        self.config.tick = SimDuration::from_millis(millis);
        self
    }

    /// Selects the algorithm under test.
    pub fn algorithm(mut self, kind: AlgorithmKind) -> Self {
        self.config.algorithm = kind;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the number of replicas started per service.
    pub fn initial_replicas(mut self, n: usize) -> Self {
        self.config.initial_replicas = n;
        self
    }

    /// Overrides the horizontal-baseline parameters.
    pub fn hpa(mut self, hpa: HpaConfig) -> Self {
        self.config.hpa = hpa;
        self
    }

    /// Overrides the hybrid-algorithm parameters.
    pub fn hyscale(mut self, hyscale: HyScaleConfig) -> Self {
        self.config.hyscale = hyscale;
        self
    }

    /// Overrides the resource-model overheads.
    pub fn cluster_config(mut self, cluster: ClusterConfig) -> Self {
        self.config.cluster = cluster;
        self
    }

    /// Sets the tick-engine worker-thread count (default 1 = serial).
    /// Any value produces bit-identical results; higher settings only
    /// change wall-clock time.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.config.parallelism = workers;
        self
    }

    /// Switches the workload to flow-cohort arrivals: one Poisson batch
    /// per service per tick instead of individual arrival events. See
    /// [`ScenarioConfig::cohort_arrivals`].
    pub fn cohort_arrivals(mut self, on: bool) -> Self {
        self.config.cohort_arrivals = on;
        self
    }

    /// Enables closed-form skipping of provably idle tick stretches. See
    /// [`ScenarioConfig::time_warp`].
    pub fn time_warp(mut self, on: bool) -> Self {
        self.config.time_warp = on;
        self
    }

    /// Installs a service dependency DAG: client load attaches only to
    /// its entry points and completed hops spawn child work along its
    /// edges. See [`ScenarioConfig::graph`].
    pub fn graph(mut self, graph: ServiceGraph) -> Self {
        self.config.graph = Some(graph);
        self
    }

    /// Installs the request-resilience layer: per-hop retries with
    /// deadline propagation, retry budgets, and overload shedding.
    /// Requires [`ScenarioBuilder::graph`]. See
    /// [`ScenarioConfig::resilience`].
    pub fn resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.config.resilience = resilience;
        self
    }

    /// Writes a full-state snapshot into `dir` every `every_ticks` ticks.
    /// Snapshotting never perturbs the simulation. See
    /// [`ScenarioConfig::snapshot`].
    pub fn snapshot_every(mut self, every_ticks: u64, dir: impl Into<PathBuf>) -> Self {
        self.config.snapshot = Some(SnapshotPolicy {
            every_ticks,
            dir: dir.into(),
            halt_after_first: false,
        });
        self
    }

    /// Stops the run right after the first snapshot is written (requires
    /// [`ScenarioBuilder::snapshot_every`] first). See
    /// [`SnapshotPolicy::halt_after_first`].
    pub fn snapshot_halt(mut self, on: bool) -> Self {
        if let Some(policy) = self.config.snapshot.as_mut() {
            policy.halt_after_first = on;
        }
        self
    }

    /// Resumes from a snapshot file written by a run of this exact
    /// configuration. See [`ScenarioConfig::resume`].
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.resume = Some(path.into());
        self
    }

    /// Finishes building without running.
    pub fn build(self) -> ScenarioConfig {
        self.config
    }

    /// Builds and runs once.
    ///
    /// # Errors
    ///
    /// See [`SimulationDriver::run`].
    pub fn run(self) -> Result<RunReport, CoreError> {
        SimulationDriver::run(&self.config)
    }

    /// Builds and runs once, journaling decision provenance into `trace`.
    ///
    /// # Errors
    ///
    /// See [`SimulationDriver::run_traced`].
    pub fn run_traced(self, trace: &mut TraceSink) -> Result<RunReport, CoreError> {
        SimulationDriver::run_traced(&self.config, trace)
    }

    /// Builds and runs once per seed, merging outcomes.
    ///
    /// # Errors
    ///
    /// See [`SimulationDriver::run_averaged`].
    pub fn run_seeds(self, seeds: &[u64]) -> Result<RunReport, CoreError> {
        SimulationDriver::run_averaged(&self.config, seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyscale_cluster::MemMb;

    #[test]
    fn parallelism_accepts_positive_integers() {
        assert_eq!(parse_parallelism("1"), Ok(1));
        assert_eq!(parse_parallelism("4"), Ok(4));
        assert_eq!(parse_parallelism(" 16 "), Ok(16), "whitespace is trimmed");
    }

    #[test]
    fn parallelism_rejects_garbage_loudly() {
        // Each of these used to silently fall back to serial execution.
        for bad in ["four", "", "  ", "0", "-2", "2.5", "4x"] {
            let err = parse_parallelism(bad)
                .expect_err(&format!("{bad:?} should be rejected, not defaulted"));
            assert!(!err.is_empty(), "error message must explain the rejection");
        }
    }

    #[test]
    fn parallelism_zero_gets_a_specific_message() {
        let err = parse_parallelism("0").unwrap_err();
        assert!(err.contains("serial"), "zero should point at 1: {err}");
    }

    fn quick(algorithm: AlgorithmKind, seed: u64) -> RunReport {
        ScenarioBuilder::new("test")
            .nodes(3)
            .services(
                2,
                ServiceProfile::CpuBound,
                LoadPattern::Constant { rate: 3.0 },
            )
            .duration_secs(60.0)
            .algorithm(algorithm)
            .seed(seed)
            .run()
            .expect("scenario runs")
    }

    #[test]
    fn smoke_all_algorithms_complete_requests() {
        for kind in AlgorithmKind::ALL {
            let report = quick(kind, 1);
            assert!(
                report.requests.issued > 50,
                "{kind}: {}",
                report.requests.issued
            );
            assert!(
                report.requests.completed > 0,
                "{kind} completed none of {} requests",
                report.requests.issued
            );
            assert_eq!(report.algorithm, kind);
        }
    }

    #[test]
    fn node_decommission_mid_run_is_survivable() {
        let run = |with_loss: bool| {
            let mut builder = ScenarioBuilder::new("elastic")
                .nodes(4)
                .services(
                    2,
                    ServiceProfile::CpuBound,
                    LoadPattern::Constant { rate: 4.0 },
                )
                .duration_secs(120.0)
                .algorithm(AlgorithmKind::HyScaleCpu)
                .seed(3);
            if with_loss {
                builder = builder.node_event(60.0, NodeEvent::Decommission(0));
            }
            builder.run().unwrap()
        };
        let stable = run(false);
        let elastic = run(true);
        assert!(elastic.requests.completed > 0);
        // Losing a machine mid-run costs something but the autoscaler
        // replaces the lost replicas; service continues.
        assert!(elastic.requests.availability_pct() > 90.0);
        assert!(elastic.requests.failures.removal >= stable.requests.failures.removal);
    }

    #[test]
    fn node_commission_mid_run_adds_capacity() {
        let report = ScenarioBuilder::new("grow")
            .nodes(1)
            .services(
                1,
                ServiceProfile::CpuBound,
                LoadPattern::Constant { rate: 12.0 },
            )
            .duration_secs(180.0)
            .algorithm(AlgorithmKind::Kubernetes)
            .seed(4)
            .node_event(30.0, NodeEvent::Commission(NodeSpec::uniform_worker()))
            .node_event(30.0, NodeEvent::Commission(NodeSpec::uniform_worker()))
            .run()
            .unwrap();
        // The HPA spreads onto the commissioned machines.
        assert!(report.scaling.spawns > 0);
        assert!(report.replicas.max() > 1.0);
    }

    #[test]
    fn node_event_validation() {
        let bad_idx = ScenarioBuilder::new("x")
            .nodes(1)
            .services(1, ServiceProfile::CpuBound, LoadPattern::low_burst())
            .node_event(10.0, NodeEvent::Decommission(7))
            .build();
        assert!(SimulationDriver::run(&bad_idx).is_err());

        let bad_time = ScenarioBuilder::new("x")
            .nodes(1)
            .services(1, ServiceProfile::CpuBound, LoadPattern::low_burst())
            .node_event(-1.0, NodeEvent::Commission(NodeSpec::small()))
            .build();
        assert!(SimulationDriver::run(&bad_time).is_err());
    }

    #[test]
    fn vertical_only_baseline_never_replicates() {
        let report = quick(AlgorithmKind::VerticalOnly, 2);
        assert_eq!(report.scaling.spawns, 0);
        assert_eq!(report.scaling.removals, 0);
        assert!(report.scaling.vertical > 0, "it must still docker-update");
        assert!(report.requests.completed > 0);
    }

    #[test]
    fn determinism_same_seed_same_outcomes() {
        let a = quick(AlgorithmKind::HyScaleCpu, 7);
        let b = quick(AlgorithmKind::HyScaleCpu, 7);
        assert_eq!(a.requests.issued, b.requests.issued);
        assert_eq!(a.requests.completed, b.requests.completed);
        assert_eq!(a.requests.failures, b.requests.failures);
        assert_eq!(a.scaling, b.scaling);
        assert!((a.requests.mean_response_secs() - b.requests.mean_response_secs()).abs() < 1e-12);
    }

    #[test]
    fn different_seeds_differ() {
        let a = quick(AlgorithmKind::Kubernetes, 1);
        let b = quick(AlgorithmKind::Kubernetes, 2);
        assert_ne!(
            (a.requests.issued, a.requests.completed),
            (b.requests.issued, b.requests.completed)
        );
    }

    #[test]
    fn no_scaling_keeps_initial_allocation() {
        let report = quick(AlgorithmKind::None, 1);
        assert_eq!(report.scaling.total(), 0);
        // Replica count stays at the initial value throughout.
        assert!(report.replicas.points().iter().all(|&(_, v)| v == 2.0));
    }

    #[test]
    fn per_service_outcomes_sum_to_overall() {
        let report = quick(AlgorithmKind::HyScaleCpuMem, 3);
        let issued: u64 = report.per_service.values().map(|o| o.issued).sum();
        let completed: u64 = report.per_service.values().map(|o| o.completed).sum();
        assert_eq!(issued, report.requests.issued);
        assert_eq!(completed, report.requests.completed);
    }

    #[test]
    fn run_averaged_merges_seeds() {
        let config = ScenarioBuilder::new("avg")
            .nodes(2)
            .services(
                1,
                ServiceProfile::CpuBound,
                LoadPattern::Constant { rate: 2.0 },
            )
            .duration_secs(30.0)
            .algorithm(AlgorithmKind::Kubernetes)
            .build();
        let merged = SimulationDriver::run_averaged(&config, &[1, 2, 3]).unwrap();
        assert_eq!(merged.seeds, vec![1, 2, 3]);
        let single = SimulationDriver::run(&config).unwrap();
        assert!(merged.requests.issued > single.requests.issued);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let no_nodes = ScenarioBuilder::new("x")
            .services(1, ServiceProfile::CpuBound, LoadPattern::low_burst())
            .build();
        assert!(SimulationDriver::run(&no_nodes).is_err());

        let no_services = ScenarioBuilder::new("x").nodes(1).build();
        assert!(SimulationDriver::run(&no_services).is_err());

        let mut dup = ScenarioBuilder::new("x")
            .nodes(1)
            .services(1, ServiceProfile::CpuBound, LoadPattern::low_burst())
            .build();
        dup.services.push(dup.services[0].clone());
        assert!(matches!(
            SimulationDriver::run(&dup),
            Err(CoreError::InvalidScenario(_))
        ));

        let bad_antagonist = ScenarioBuilder::new("x")
            .nodes(1)
            .services(1, ServiceProfile::CpuBound, LoadPattern::low_burst())
            .antagonist(5, ContainerSpec::new(ServiceId::new(99)).antagonist())
            .build();
        assert!(SimulationDriver::run(&bad_antagonist).is_err());

        assert!(SimulationDriver::run_averaged(
            &ScenarioBuilder::new("x")
                .nodes(1)
                .services(1, ServiceProfile::CpuBound, LoadPattern::low_burst())
                .build(),
            &[],
        )
        .is_err());
    }

    #[test]
    fn chaos_scenario_survives_and_reports_availability() {
        use hyscale_cluster::FaultKind;
        let report = ScenarioBuilder::new("chaos")
            .nodes(4)
            .services(
                2,
                ServiceProfile::CpuBound,
                LoadPattern::Constant { rate: 4.0 },
            )
            .duration_secs(120.0)
            .algorithm(AlgorithmKind::HyScaleCpu)
            .seed(9)
            .faults(
                FaultPlan::new()
                    .with(
                        30.0,
                        FaultKind::NodeCrash {
                            node: 0,
                            down_secs: 20.0,
                        },
                    )
                    .with(45.0, FaultKind::OomKill { service: 1 })
                    .with(
                        50.0,
                        FaultKind::NicDegrade {
                            node: 1,
                            factor: 0.2,
                            duration_secs: 15.0,
                        },
                    )
                    .with(
                        60.0,
                        FaultKind::StatOutage {
                            node: 2,
                            duration_secs: 10.0,
                        },
                    ),
            )
            .run()
            .unwrap();
        assert_eq!(report.faults.node_crashes, 1);
        assert_eq!(report.faults.reboots, 1);
        assert_eq!(report.faults.stat_outages, 1);
        assert!(report.requests.completed > 0, "service kept serving");
        assert_eq!(report.availability.len(), 2);
        for a in report.availability.values() {
            assert!(
                (a.observed_secs - 120.0).abs() < 0.5,
                "observed {}",
                a.observed_secs
            );
        }
        assert!(report.min_uptime_pct() > 50.0);
    }

    #[test]
    fn fault_plan_validation_is_wired() {
        use hyscale_cluster::FaultKind;
        let bad = ScenarioBuilder::new("x")
            .nodes(2)
            .services(1, ServiceProfile::CpuBound, LoadPattern::low_burst())
            .faults(FaultPlan::new().with(
                10.0,
                FaultKind::NodeCrash {
                    node: 9,
                    down_secs: 5.0,
                },
            ))
            .build();
        assert!(matches!(
            SimulationDriver::run(&bad),
            Err(CoreError::InvalidScenario(_))
        ));

        let bad_recovery = ScenarioBuilder::new("x")
            .nodes(1)
            .services(1, ServiceProfile::CpuBound, LoadPattern::low_burst())
            .recovery(crate::recovery::RecoveryConfig {
                base_backoff_secs: -1.0,
                ..Default::default()
            })
            .build();
        assert!(SimulationDriver::run(&bad_recovery).is_err());
    }

    #[test]
    fn recovery_restores_service_after_total_replica_loss() {
        use hyscale_cluster::FaultKind;
        // One service, no autoscaling: when its only node crashes, only
        // the recovery path can bring the service back.
        let report = ScenarioBuilder::new("recover")
            .nodes(2)
            .services(
                1,
                ServiceProfile::CpuBound,
                LoadPattern::Constant { rate: 2.0 },
            )
            .duration_secs(120.0)
            .algorithm(AlgorithmKind::None)
            .seed(5)
            .faults(FaultPlan::new().with(
                30.0,
                FaultKind::NodeCrash {
                    node: 0,
                    down_secs: 60.0,
                },
            ))
            .run()
            .unwrap();
        let avail = report.availability.values().next().unwrap();
        // The initial replica lands on node 0 (round-robin), dies at 30 s,
        // and recovery respawns it on the surviving node.
        assert!(report.total_respawns() >= 1, "{avail:?}");
        assert_eq!(avail.deaths, 1, "{avail:?}");
        assert!(avail.repairs >= 1, "{avail:?}");
        assert!(
            avail.mttr_secs() > 0.0 && avail.mttr_secs() < 20.0,
            "{avail:?}"
        );
        assert!(
            report.min_uptime_pct() > 80.0,
            "{}",
            report.min_uptime_pct()
        );
        // Requests kept completing after the repair.
        assert!(report.requests.completed > 0);
    }

    #[test]
    fn hyscale_performs_vertical_scaling_under_load() {
        let report = ScenarioBuilder::new("vertical")
            .nodes(3)
            .services(
                1,
                ServiceProfile::CpuBound,
                LoadPattern::Constant { rate: 8.0 },
            )
            .duration_secs(120.0)
            .algorithm(AlgorithmKind::HyScaleCpu)
            .seed(5)
            .run()
            .unwrap();
        assert!(
            report.scaling.vertical > 0,
            "hybrid algorithm should docker-update under load: {:?}",
            report.scaling
        );
    }

    #[test]
    fn kubernetes_never_scales_vertically() {
        let report = ScenarioBuilder::new("horizontal-only")
            .nodes(3)
            .services(
                1,
                ServiceProfile::CpuBound,
                LoadPattern::Constant { rate: 8.0 },
            )
            .duration_secs(120.0)
            .algorithm(AlgorithmKind::Kubernetes)
            .seed(5)
            .run()
            .unwrap();
        assert_eq!(report.scaling.vertical, 0);
        assert!(report.scaling.spawns > 0, "k8s should scale out under load");
    }

    #[test]
    fn mem_bound_load_swamps_memory_blind_algorithms() {
        let run = |kind| {
            ScenarioBuilder::new("memory")
                .nodes(3)
                .service(
                    ServiceSpec::synthetic(
                        0,
                        ServiceProfile::MemBound,
                        LoadPattern::Constant { rate: 8.0 },
                    )
                    .with_demands(0.25, MemMb(100.0), 0.1),
                )
                .duration_secs(240.0)
                .algorithm(kind)
                .seed(11)
                .run()
                .unwrap()
        };
        let blind = run(AlgorithmKind::HyScaleCpu);
        let aware = run(AlgorithmKind::HyScaleCpuMem);
        assert!(
            aware.requests.failed_pct() < blind.requests.failed_pct(),
            "mem-aware {:.1}% vs blind {:.1}%",
            aware.requests.failed_pct(),
            blind.requests.failed_pct()
        );
    }

    #[test]
    fn report_helpers() {
        let report = quick(AlgorithmKind::Kubernetes, 1);
        assert!(report.mean_response_ms() > 0.0);
        assert_eq!(report.seeds, vec![1]);
        assert!(!report.replicas.is_empty());
    }

    #[test]
    fn builder_composes() {
        let config = ScenarioBuilder::new("composed")
            .nodes(2)
            .nodes_with_spec(1, NodeSpec::small())
            .services(1, ServiceProfile::Mixed, LoadPattern::high_burst())
            .initial_replicas(2)
            .scale_period_secs(10.0)
            .tick_millis(50)
            .hpa(HpaConfig {
                target: 0.7,
                ..HpaConfig::default()
            })
            .hyscale(HyScaleConfig {
                cpu_target: 0.6,
                ..HyScaleConfig::default()
            })
            .build();
        assert_eq!(config.nodes.len(), 3);
        assert_eq!(config.initial_replicas, 2);
        assert_eq!(config.scale_period, SimDuration::from_secs(10.0));
        assert_eq!(config.tick, SimDuration::from_millis(50));
        assert_eq!(config.hpa.target, 0.7);
        assert_eq!(config.hyscale.cpu_target, 0.6);
        assert!(config.validate().is_ok());
    }

    fn cohort_config(seed: u64, parallelism: usize) -> ScenarioConfig {
        ScenarioBuilder::new("cohort")
            .nodes(3)
            .services(
                2,
                ServiceProfile::CpuBound,
                LoadPattern::Constant { rate: 40.0 },
            )
            .duration_secs(60.0)
            .algorithm(AlgorithmKind::HyScaleCpu)
            .seed(seed)
            .parallelism(parallelism)
            .cohort_arrivals(true)
            .build()
    }

    #[test]
    fn cohort_mode_completes_requests_and_conserves_them() {
        let report = SimulationDriver::run(&cohort_config(7, 1)).unwrap();
        assert!(report.requests.issued > 1000, "{}", report.requests.issued);
        assert!(report.requests.completed > 0);
        // Every issued member is completed, failed, or still in flight at
        // the horizon: outstanding() saturates at 0 on violation, so
        // check the exact identity.
        assert!(
            report.requests.completed + report.requests.failures.total() <= report.requests.issued,
            "overcounted outcomes: {:?}",
            report.requests
        );
        let issued: u64 = report.per_service.values().map(|o| o.issued).sum();
        assert_eq!(issued, report.requests.issued);
    }

    #[test]
    fn cohort_mode_is_deterministic_and_parallelism_invariant() {
        let digest = |report: &RunReport| {
            (
                report.requests.issued,
                report.requests.completed,
                report.requests.failures,
                report.scaling,
                report.requests.mean_response_secs().to_bits(),
            )
        };
        let serial = SimulationDriver::run(&cohort_config(11, 1)).unwrap();
        let serial_again = SimulationDriver::run(&cohort_config(11, 1)).unwrap();
        let parallel = SimulationDriver::run(&cohort_config(11, 4)).unwrap();
        assert_eq!(digest(&serial), digest(&serial_again));
        assert_eq!(
            digest(&serial),
            digest(&parallel),
            "cohort runs must be bit-identical across worker counts"
        );
    }

    #[test]
    fn time_warp_skips_idle_stretches_without_changing_outcomes() {
        // A short burst then silence: most of the run is provably idle.
        let build = |warp: bool| {
            ScenarioBuilder::new("warp")
                .nodes(2)
                .services(
                    1,
                    ServiceProfile::CpuBound,
                    LoadPattern::Burst {
                        base: 0.0,
                        peak: 30.0,
                        period_secs: 600.0,
                        duty: 0.05,
                    },
                )
                .duration_secs(300.0)
                .algorithm(AlgorithmKind::None)
                .seed(3)
                .cohort_arrivals(true)
                .time_warp(warp)
                .build()
        };
        let plain = SimulationDriver::run(&build(false)).unwrap();
        let warped = SimulationDriver::run(&build(true)).unwrap();
        assert_eq!(plain.warp_ticks, 0);
        assert!(warped.warp_ticks > 100, "warped {}", warped.warp_ticks);
        assert_eq!(plain.requests.issued, warped.requests.issued);
        assert_eq!(plain.requests.completed, warped.requests.completed);
        assert_eq!(plain.requests.failures, warped.requests.failures);
        assert_eq!(
            plain.requests.mean_response_secs().to_bits(),
            warped.requests.mean_response_secs().to_bits(),
            "warped runs must complete the same members at the same times"
        );
    }

    #[test]
    fn time_warp_is_safe_under_events_and_faults() {
        use hyscale_cluster::FaultKind;
        let build = |warp: bool| {
            ScenarioBuilder::new("warp-chaos")
                .nodes(3)
                .services(
                    1,
                    ServiceProfile::CpuBound,
                    LoadPattern::Burst {
                        base: 0.0,
                        peak: 20.0,
                        period_secs: 120.0,
                        duty: 0.1,
                    },
                )
                .duration_secs(240.0)
                .algorithm(AlgorithmKind::HyScaleCpu)
                .seed(13)
                .faults(FaultPlan::new().with(
                    90.0,
                    FaultKind::NodeCrash {
                        node: 0,
                        down_secs: 30.0,
                    },
                ))
                .cohort_arrivals(true)
                .time_warp(warp)
                .build()
        };
        let plain = SimulationDriver::run(&build(false)).unwrap();
        let warped = SimulationDriver::run(&build(true)).unwrap();
        // Faults and arrivals land identically: the warp never jumps a
        // fault boundary, and skipped ticks draw nothing (zero-rate
        // Poisson draws consume no randomness). Completions are compared
        // loosely only because scaling decisions read closed-form usage
        // state that is not bitwise-identical to ticked decay.
        assert_eq!(plain.faults.node_crashes, warped.faults.node_crashes);
        assert_eq!(plain.faults.reboots, warped.faults.reboots);
        assert_eq!(plain.requests.issued, warped.requests.issued);
        assert!(warped.requests.completed > 0);
        assert!(warped.warp_ticks > 0, "chaos run never warped");
        // Availability observed the full horizon either way.
        for (plain_a, warp_a) in plain
            .availability
            .values()
            .zip(warped.availability.values())
        {
            assert!(
                (plain_a.observed_secs - warp_a.observed_secs).abs() < 1e-6,
                "warp lost wall-clock: {} vs {}",
                plain_a.observed_secs,
                warp_a.observed_secs
            );
        }
    }
}
