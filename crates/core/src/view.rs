//! The Monitor's periodic snapshot of the cluster.
//!
//! Every scaling period the Node Managers report `docker stats`-style
//! usage for each container; the Monitor assembles them into a
//! [`ClusterView`] — the only information an [`Autoscaler`]
//! (see [`crate::Autoscaler`]) receives. Keeping the algorithms pure
//! functions of this view makes them unit-testable against hand-built
//! snapshots, exactly how the paper's equations are written.

use hyscale_cluster::{ContainerId, Cores, Mbps, MemMb, NodeId, ServiceId};
use hyscale_sim::SimTime;

/// One replica's reported usage and current allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaView {
    /// The replica's container.
    pub container: ContainerId,
    /// The node hosting it.
    pub node: NodeId,
    /// Average CPU consumed over the last period.
    pub cpu_used: Cores,
    /// Current CPU request (allocation), the utilization denominator.
    pub cpu_requested: Cores,
    /// Resident memory (including swapped pages).
    pub mem_used: MemMb,
    /// Current memory limit.
    pub mem_limit: MemMb,
    /// Average egress rate over the last period.
    pub net_used: Mbps,
    /// Requested egress bandwidth, the network-utilization denominator.
    pub net_requested: Mbps,
    /// Requests in flight at snapshot time.
    pub in_flight: usize,
    /// Whether the replica swapped during the period.
    pub swapping: bool,
    /// Whether the replica is past its startup delay and serving.
    pub ready: bool,
    /// How many Monitor periods old this usage sample is. 0 with a
    /// perfectly reliable control plane; grows when reports are lost or
    /// delayed ([`crate::controlplane::NEVER_REPORTED`] when no report
    /// for this replica ever arrived).
    pub age_ticks: u32,
}

impl ReplicaView {
    /// CPU utilization as a fraction of the request (1.0 = 100%).
    ///
    /// Returns 0.0 when the request is zero (a container with no
    /// allocation reports no utilization rather than infinity).
    pub fn cpu_utilization(&self) -> f64 {
        safe_ratio(self.cpu_used.get(), self.cpu_requested.get())
    }

    /// Memory utilization as a fraction of the limit.
    pub fn mem_utilization(&self) -> f64 {
        safe_ratio(self.mem_used.get(), self.mem_limit.get())
    }

    /// Network utilization as a fraction of the request.
    pub fn net_utilization(&self) -> f64 {
        safe_ratio(self.net_used.get(), self.net_requested.get())
    }
}

fn safe_ratio(num: f64, denom: f64) -> f64 {
    if denom > 0.0 {
        (num / denom).max(0.0)
    } else {
        0.0
    }
}

/// One service's replicas as seen this period.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceView {
    /// The service.
    pub service: ServiceId,
    /// Its live replicas (starting replicas are included, marked
    /// `ready = false`).
    pub replicas: Vec<ReplicaView>,
    /// The service's template CPU request for newly spawned replicas
    /// (what `kubectl run` would request).
    pub template_cpu: Cores,
    /// The service's template memory limit for newly spawned replicas.
    pub template_mem: MemMb,
    /// The service's baseline (idle) memory footprint; the paper requires
    /// a node to advertise at least this much before hosting a replica.
    pub base_mem: MemMb,
}

impl ServiceView {
    /// Sum of replica CPU usage.
    pub fn total_cpu_used(&self) -> Cores {
        self.replicas.iter().map(|r| r.cpu_used).sum()
    }

    /// Sum of replica CPU requests.
    pub fn total_cpu_requested(&self) -> Cores {
        self.replicas.iter().map(|r| r.cpu_requested).sum()
    }

    /// Sum of replica memory usage.
    pub fn total_mem_used(&self) -> MemMb {
        self.replicas.iter().map(|r| r.mem_used).sum()
    }

    /// Sum of replica memory limits.
    pub fn total_mem_limit(&self) -> MemMb {
        self.replicas.iter().map(|r| r.mem_limit).sum()
    }

    /// Sum of replica egress usage.
    pub fn total_net_used(&self) -> Mbps {
        self.replicas.iter().map(|r| r.net_used).sum()
    }

    /// Sum of replica network requests.
    pub fn total_net_requested(&self) -> Mbps {
        self.replicas.iter().map(|r| r.net_requested).sum()
    }

    /// Mean CPU utilization across replicas (0.0 for no replicas).
    pub fn mean_cpu_utilization(&self) -> f64 {
        if self.replicas.is_empty() {
            0.0
        } else {
            self.replicas
                .iter()
                .map(ReplicaView::cpu_utilization)
                .sum::<f64>()
                / self.replicas.len() as f64
        }
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Age of the *oldest* usage sample backing this service's view, in
    /// Monitor periods (0 for no replicas: an empty service has nothing
    /// stale to mis-scale).
    pub fn max_age_ticks(&self) -> u32 {
        self.replicas.iter().map(|r| r.age_ticks).max().unwrap_or(0)
    }
}

/// One node's advertised free resources.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeView {
    /// The node.
    pub node: NodeId,
    /// CPU not promised to any live container.
    pub free_cpu: Cores,
    /// Memory not promised to any live container.
    pub free_mem: MemMb,
    /// Services with a replica on this node (placement anti-affinity
    /// input: HyScale spawns new replicas on nodes *not* hosting the
    /// service).
    pub hosted_services: Vec<ServiceId>,
}

impl NodeView {
    /// True if this node hosts a replica of `service`.
    pub fn hosts(&self, service: ServiceId) -> bool {
        self.hosted_services.contains(&service)
    }
}

/// The Monitor's full periodic snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterView {
    /// Snapshot time.
    pub now: SimTime,
    /// Seconds covered by the usage averages (the scaling period).
    pub period_secs: f64,
    /// Per-service replica views.
    pub services: Vec<ServiceView>,
    /// Per-node free-resource views.
    pub nodes: Vec<NodeView>,
    /// The staleness budget in Monitor periods: a service whose oldest
    /// sample exceeds this age must not be scaled *in* (see
    /// [`crate::algorithms::veto_stale_reductions`]). 0 budget with a
    /// perfect control plane still vetoes nothing, because every sample
    /// has age 0.
    pub staleness_budget_ticks: u32,
}

impl ClusterView {
    /// Looks up a service view.
    pub fn service(&self, id: ServiceId) -> Option<&ServiceView> {
        self.services.iter().find(|s| s.service == id)
    }

    /// Looks up a node view.
    pub fn node(&self, id: NodeId) -> Option<&NodeView> {
        self.nodes.iter().find(|n| n.node == id)
    }

    /// Total replicas across all services.
    pub fn total_replicas(&self) -> usize {
        self.services.iter().map(ServiceView::replica_count).sum()
    }

    /// Whether a service's data is older than the staleness budget
    /// (false for unknown services).
    pub fn service_is_stale(&self, id: ServiceId) -> bool {
        self.service(id)
            .is_some_and(|s| s.max_age_ticks() > self.staleness_budget_ticks)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Hand-built view fixtures shared by the algorithm unit tests.

    use super::*;

    /// Builds a replica view with the given usage/request and defaults
    /// elsewhere.
    pub fn replica(container: u32, node: u32, cpu_used: f64, cpu_requested: f64) -> ReplicaView {
        ReplicaView {
            container: ContainerId::new(container),
            node: NodeId::new(node),
            cpu_used: Cores(cpu_used),
            cpu_requested: Cores(cpu_requested),
            mem_used: MemMb(100.0),
            mem_limit: MemMb(256.0),
            net_used: Mbps(1.0),
            net_requested: Mbps(50.0),
            in_flight: 1,
            swapping: false,
            ready: true,
            age_ticks: 0,
        }
    }

    /// Builds a single-service view over the given replicas.
    pub fn view_of(service: u32, replicas: Vec<ReplicaView>, nodes: Vec<NodeView>) -> ClusterView {
        ClusterView {
            now: SimTime::from_secs(100.0),
            period_secs: 5.0,
            services: vec![ServiceView {
                service: ServiceId::new(service),
                replicas,
                template_cpu: Cores(0.5),
                template_mem: MemMb(256.0),
                base_mem: MemMb(64.0),
            }],
            nodes,
            staleness_budget_ticks: 1,
        }
    }

    /// Builds a node view.
    pub fn node(node: u32, free_cpu: f64, free_mem: f64, hosted: Vec<u32>) -> NodeView {
        NodeView {
            node: NodeId::new(node),
            free_cpu: Cores(free_cpu),
            free_mem: MemMb(free_mem),
            hosted_services: hosted.into_iter().map(ServiceId::new).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    #[test]
    fn utilization_ratios() {
        let r = replica(0, 0, 0.4, 0.5);
        assert!((r.cpu_utilization() - 0.8).abs() < 1e-12);
        assert!((r.mem_utilization() - 100.0 / 256.0).abs() < 1e-12);
        assert!((r.net_utilization() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn zero_request_reports_zero_utilization() {
        let r = replica(0, 0, 0.4, 0.0);
        assert_eq!(r.cpu_utilization(), 0.0);
    }

    #[test]
    fn service_totals() {
        let v = view_of(
            0,
            vec![replica(0, 0, 0.2, 0.5), replica(1, 1, 0.6, 1.0)],
            vec![],
        );
        let s = v.service(ServiceId::new(0)).unwrap();
        assert_eq!(s.total_cpu_used(), Cores(0.8));
        assert_eq!(s.total_cpu_requested(), Cores(1.5));
        assert_eq!(s.replica_count(), 2);
        // mean of 0.4 and 0.6
        assert!((s.mean_cpu_utilization() - 0.5).abs() < 1e-12);
        assert_eq!(v.total_replicas(), 2);
    }

    #[test]
    fn empty_service_mean_is_zero() {
        let v = view_of(0, vec![], vec![]);
        assert_eq!(
            v.service(ServiceId::new(0)).unwrap().mean_cpu_utilization(),
            0.0
        );
    }

    #[test]
    fn staleness_follows_the_oldest_sample() {
        let mut fresh = replica(0, 0, 0.2, 0.5);
        let mut old = replica(1, 1, 0.2, 0.5);
        fresh.age_ticks = 0;
        old.age_ticks = 3;
        let v = view_of(0, vec![fresh, old], vec![]);
        assert_eq!(v.services[0].max_age_ticks(), 3);
        assert!(v.service_is_stale(ServiceId::new(0)), "budget is 1, age 3");
        assert!(!v.service_is_stale(ServiceId::new(9)));
        let all_fresh = view_of(1, vec![replica(0, 0, 0.2, 0.5)], vec![]);
        assert!(!all_fresh.service_is_stale(ServiceId::new(1)));
        assert_eq!(view_of(2, vec![], vec![]).services[0].max_age_ticks(), 0);
    }

    #[test]
    fn node_lookup_and_hosting() {
        let v = view_of(0, vec![], vec![node(3, 2.0, 4096.0, vec![0])]);
        let n = v.node(NodeId::new(3)).unwrap();
        assert!(n.hosts(ServiceId::new(0)));
        assert!(!n.hosts(ServiceId::new(1)));
        assert!(v.node(NodeId::new(9)).is_none());
        assert!(v.service(ServiceId::new(9)).is_none());
    }
}
