//! HyScale: hybrid and network autoscaling of dockerized microservices.
//!
//! This crate implements the paper's contribution — two hybrid
//! (vertical + horizontal) autoscaling algorithms, a dedicated network
//! scaling algorithm, the Kubernetes HPA baseline they are benchmarked
//! against, and the autoscaler platform that hosts them:
//!
//! * [`KubernetesHpa`] — the Kubernetes horizontal autoscaling control law
//!   (Sec. IV-A.1): `NumReplicas = ceil(Σ utilization / target)` with a
//!   ±10% tolerance band and minimum scale-up/scale-down intervals.
//! * [`NetworkHpa`] — the paper's exploratory horizontal scaler driven by
//!   egress bandwidth usage instead of CPU (Sec. IV-A.2).
//! * [`HyScaleCpu`] — hybrid scaler on CPU: per-replica resource
//!   reclamation and acquisition by `docker update`, horizontal scaling
//!   only when vertical scaling cannot meet demand (Sec. IV-B.1).
//! * [`HyScaleCpuMem`] — extends HyScaleCPU to memory and swap, with
//!   mutual CPU+memory thresholds for replica removal and placement
//!   (Sec. IV-B.2).
//!
//! The platform mirrors the paper's architecture (Sec. V): a central
//! [`Monitor`] gathers per-container usage through per-node
//! [`NodeManager`]s, feeds a [`ClusterView`] to the selected
//! [`Autoscaler`], and applies the returned [`ScalingAction`]s to the
//! simulated [`Cluster`](hyscale_cluster::Cluster); [`LoadBalancer`]s
//! proxy client requests to replicas.
//!
//! End-to-end experiments are run through [`ScenarioBuilder`] /
//! [`SimulationDriver`], which wire the workload generators, the cluster,
//! and the platform together and produce a [`RunReport`].
//!
//! # Example
//!
//! ```
//! use hyscale_core::{AlgorithmKind, ScenarioBuilder};
//! use hyscale_workload::{LoadPattern, ServiceProfile};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = ScenarioBuilder::new("demo")
//!     .nodes(4)
//!     .services(2, ServiceProfile::CpuBound, LoadPattern::low_burst())
//!     .duration_secs(60.0)
//!     .algorithm(AlgorithmKind::HyScaleCpu)
//!     .seed(1)
//!     .run()?;
//! assert!(report.requests.issued > 0);
//! println!("mean rt = {:.1} ms", report.requests.mean_response_secs() * 1e3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actions;
mod algorithms;
mod balancer;
mod controlplane;
mod driver;
mod error;
mod flowgraph;
mod monitor;
mod nodemanager;
mod recovery;
mod resilience;
mod view;

pub use actions::ScalingAction;
pub use algorithms::{
    veto_stale_reductions, AlgorithmKind, Autoscaler, HpaConfig, HyScaleConfig, HyScaleCpu,
    HyScaleCpuMem, KubernetesHpa, NetworkHpa, NoScaling, PlacementPolicy, RescaleGate,
    VerticalOnly,
};
pub use balancer::{BreakerConfig, LoadBalancer};
pub use controlplane::{
    ActuationOutcome, ControlPlane, ControlPlaneConfig, ControlPlaneStats, NEVER_REPORTED,
};
pub use driver::{
    NodeEvent, RunReport, ScalingCounts, ScenarioBuilder, ScenarioConfig, SimulationDriver,
    SnapshotPolicy,
};
pub use error::CoreError;
pub use flowgraph::EntryPointStats;
pub use monitor::{Monitor, MonitorReport};
pub use nodemanager::NodeManager;
pub use recovery::{RecoveryConfig, RecoveryManager, RecoveryReport};
pub use resilience::{ResilienceConfig, ResilienceStats};
pub use view::{ClusterView, NodeView, ReplicaView, ServiceView};
