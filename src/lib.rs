//! # HyScale
//!
//! Umbrella crate for the HyScale reproduction: hybrid (vertical +
//! horizontal) and network autoscaling of dockerized microservices, after
//! Wong, Kwan, Jacobsen & Muthusamy, *HyScale: Hybrid and Network Scaling of
//! Dockerized Microservices in Cloud Data Centres*, ICDCS 2019.
//!
//! This crate re-exports the workspace crates under stable module names:
//!
//! * [`sim`] — deterministic discrete-time simulation substrate.
//! * [`exec`] — persistent worker pool driving the parallel tick engine.
//! * [`cluster`] — Docker-like cluster resource model (CPU shares, memory
//!   limits + swap, tc-style network shaping).
//! * [`workload`] — microservice profiles, bursty load generators, and the
//!   Bitbrains GWA-T-12 trace support.
//! * [`metrics`] — streaming statistics and experiment reports.
//! * [`trace`] — deterministic decision-trace events, ring-buffered
//!   sink, and JSONL/CSV journal exporters.
//! * [`core`] — the autoscaling algorithms and autoscaler platform
//!   (Monitor, Node Managers, Load Balancers).
//!
//! # Quick start
//!
//! ```
//! use hyscale::core::{AlgorithmKind, ScenarioBuilder};
//! use hyscale::workload::{LoadPattern, ServiceProfile};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = ScenarioBuilder::new("quickstart")
//!     .nodes(4)
//!     .services(2, ServiceProfile::CpuBound, LoadPattern::low_burst())
//!     .duration_secs(120.0)
//!     .algorithm(AlgorithmKind::HyScaleCpu)
//!     .seed(7)
//!     .run()?;
//! assert!(report.requests.completed > 0);
//! # Ok(())
//! # }
//! ```

pub use hyscale_cluster as cluster;
pub use hyscale_core as core;
pub use hyscale_exec as exec;
pub use hyscale_metrics as metrics;
pub use hyscale_sim as sim;
pub use hyscale_trace as trace;
pub use hyscale_workload as workload;
