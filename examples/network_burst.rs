//! Network scaling under bursty egress traffic — the paper's Fig. 8
//! scenario, where the dedicated network algorithm wins by up to 1.69x.
//!
//! The setup that separates the algorithms: on the stable low-burst load
//! every service fits inside one machine's NIC, so nobody needs to scale;
//! when traffic spikes, the larger services need *more than one NIC* —
//! a problem only replication onto other machines can solve, and only the
//! network scaler watches the metric that says so (per-request CPU is
//! tiny, so the CPU-driven scalers barely react).
//!
//! ```sh
//! cargo run --release --example network_burst
//! ```

use hyscale::cluster::{Mbps, MemMb, NodeSpec};
use hyscale::core::{AlgorithmKind, ScenarioBuilder};
use hyscale::metrics::{format_speedup, Table};
use hyscale::workload::{LoadPattern, ServiceProfile, ServiceSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Network-bound microservices under high-burst load, 8 nodes with");
    println!("250 Mb/s NICs; the two large services exceed one NIC at peak.\n");

    let nic = 250.0;
    let mut table = Table::new(vec!["algorithm", "mean rt (ms)", "failed %", "spawns"]);
    let mut results = Vec::new();

    for kind in AlgorithmKind::ALL {
        let mut builder = ScenarioBuilder::new("network-burst")
            .nodes_with_spec(8, NodeSpec::uniform_worker().with_nic(Mbps(nic)))
            .duration_secs(1200.0)
            .algorithm(kind)
            .seed(7);
        // Two small services (~0.4 NIC at burst) and two large ones
        // (~1.3 NICs at burst).
        for (i, peak_nic_fraction) in [0.2, 0.2, 0.65, 0.65].into_iter().enumerate() {
            let load = LoadPattern::high_burst().scaled(peak_nic_fraction * nic / (20.0 * 8.0));
            builder = builder.service(
                ServiceSpec::synthetic(i as u32, ServiceProfile::NetBound, load).with_demands(
                    0.01,
                    MemMb(4.0),
                    8.0,
                ),
            );
        }
        let report = builder.run()?;
        table.row(vec![
            kind.label().to_string(),
            format!("{:.1}", report.mean_response_ms()),
            format!("{:.2}", report.requests.failed_pct()),
            report.scaling.spawns.to_string(),
        ]);
        results.push((kind, report.requests.mean_response_secs()));
    }

    println!("{table}");
    let rt = |k| {
        results
            .iter()
            .find(|(kind, _)| *kind == k)
            .map(|&(_, rt)| rt)
            .unwrap_or(0.0)
    };
    println!(
        "network-scaler speedup over kubernetes: {}",
        format_speedup(rt(AlgorithmKind::Kubernetes), rt(AlgorithmKind::Network))
    );
    println!("(the paper reports up to 1.69x on its high-burst network runs)");
    Ok(())
}
