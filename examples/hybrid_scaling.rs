//! Hybrid scaling on a mixed CPU+memory workload — the scenario where the
//! paper's HyScaleCPU+Mem shines and memory-blind scaling drops requests.
//!
//! Mixed services carry a working set that grows with the request rate
//! they serve (caches, session state). A single replica absorbing a whole
//! service's burst blows past its 256 MB memory limit and starts
//! swapping; the same rate split across Kubernetes' replicas stays under
//! it — which is why the paper finds Kubernetes *beating* HyScaleCPU on
//! mixed loads while HyScaleCPU+Mem, which simply raises the limit in
//! place, beats both.
//!
//! ```sh
//! cargo run --release --example hybrid_scaling
//! ```

use hyscale::cluster::MemMb;
use hyscale::core::{AlgorithmKind, ScenarioBuilder};
use hyscale::metrics::Table;
use hyscale::workload::{LoadPattern, ServiceProfile, ServiceSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Mixed CPU+memory workload, high-burst client load, 8 nodes.\n");

    let mut table = Table::new(vec![
        "algorithm",
        "mean rt (ms)",
        "failed %",
        "removal %",
        "connection %",
        "mean cores",
        "spawns",
        "vertical ops",
    ]);

    for kind in AlgorithmKind::ALL {
        let mut builder = ScenarioBuilder::new("hybrid-scaling")
            .nodes(8)
            .duration_secs(1200.0)
            .algorithm(kind)
            .seed(3);
        for i in 0..4u32 {
            // Service sizes from small to large (the big ones need more
            // than one node at peak).
            let size = 0.6 + 0.4 * i as f64;
            let mut spec = ServiceSpec::synthetic(
                i,
                ServiceProfile::Mixed,
                LoadPattern::high_burst().scaled(1.6 * size),
            )
            .with_demands(0.12, MemMb(8.0), 0.2);
            spec.container = spec
                .container
                .clone()
                .with_mem_per_rps(MemMb(14.0))
                .with_queue_cap(64);
            builder = builder.service(spec);
        }
        let report = builder.run()?;
        table.row(vec![
            kind.label().to_string(),
            format!("{:.1}", report.mean_response_ms()),
            format!("{:.2}", report.requests.failed_pct()),
            format!("{:.2}", report.requests.removal_failed_pct()),
            format!("{:.2}", report.requests.connection_failed_pct()),
            format!("{:.2}", report.cost.mean_cores()),
            report.scaling.spawns.to_string(),
            report.scaling.vertical.to_string(),
        ]);
    }

    println!("{table}");
    println!("hybridmem raises memory limits before replicas swap; the");
    println!("memory-blind algorithms accumulate connection failures (timeouts");
    println!("and queue overflow while swapping), exactly as in the paper's");
    println!("mixed experiments — with kubernetes ahead of hybrid because each");
    println!("scale-out incidentally adds memory.");
    Ok(())
}
