//! Replay a Bitbrains-style data-centre trace through the autoscalers —
//! the paper's Sec. VI-B experiment (Figs. 9 and 10).
//!
//! By default this generates the synthetic GWA-T-12-like trace (the real
//! `Rnd` dataset is not redistributable). Pass paths to real GWA-T-12
//! per-VM CSV files to replay the genuine trace instead:
//!
//! ```sh
//! cargo run --release --example bitbrains_replay
//! cargo run --release --example bitbrains_replay -- fastStorage/*.csv
//! ```

use hyscale::cluster::MemMb;
use hyscale::core::{AlgorithmKind, ScenarioBuilder};
use hyscale::metrics::Table;
use hyscale::sim::SimRng;
use hyscale::workload::bitbrains::{
    aggregate_mean, trace_to_load_pattern, SyntheticTrace, VmTrace,
};
use hyscale::workload::{ServiceProfile, ServiceSpec};

fn load_traces() -> Result<Vec<VmTrace>, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        println!("No trace files given; generating the synthetic Bitbrains-like trace.");
        let config = SyntheticTrace {
            vms: 60,
            duration_secs: 900.0,
            interval_secs: 15.0,
            ..SyntheticTrace::default()
        };
        Ok(config.generate(&mut SimRng::seed_from(42)))
    } else {
        println!("Parsing {} GWA-T-12 trace files.", args.len());
        args.iter()
            .map(|path| {
                let text = std::fs::read_to_string(path)?;
                Ok(VmTrace::parse_gwa(path.clone(), &text)?)
            })
            .collect()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let traces = load_traces()?;
    let interval = traces[0]
        .samples
        .get(1)
        .map(|s| s.timestamp_secs)
        .unwrap_or(300.0);

    // Fig. 9: the demand signal averaged over all VMs.
    let aggregate = aggregate_mean(&traces);
    println!(
        "\nTrace demand signal (mean over {} VMs), 2-minute buckets:",
        traces.len()
    );
    println!("{:>8}  {:>8}  {:>8}", "t (s)", "cpu %", "mem %");
    for chunk in aggregate.chunks((120.0 / interval).max(1.0) as usize) {
        let t = chunk[0].0;
        let cpu = chunk.iter().map(|c| c.1).sum::<f64>() / chunk.len() as f64;
        let mem = chunk.iter().map(|c| c.2).sum::<f64>() / chunk.len() as f64;
        println!("{t:>8.0}  {cpu:>8.1}  {mem:>8.1}");
    }

    // Fig. 10: replay the per-VM demand shapes as request rates onto mixed
    // microservices (trace CPU% -> request rate; per-request costs come
    // from the emulated service).
    let services = 6usize;
    let duration = traces[0]
        .samples
        .last()
        .map(|s| s.timestamp_secs + interval)
        .unwrap_or(900.0);
    let mut table = Table::new(vec!["algorithm", "mean rt (ms)", "failed %", "mean cores"]);
    for kind in [
        AlgorithmKind::Kubernetes,
        AlgorithmKind::HyScaleCpu,
        AlgorithmKind::HyScaleCpuMem,
    ] {
        let mut builder = ScenarioBuilder::new("bitbrains")
            .nodes(8)
            .duration_secs(duration)
            .algorithm(kind)
            .seed(9);
        for i in 0..services {
            // Each service follows the demand of a slice of VMs.
            let slice: Vec<&VmTrace> = traces.iter().skip(i).step_by(services).collect();
            let mut mean_cpu: Vec<f64> = Vec::new();
            let len = slice.iter().map(|t| t.samples.len()).min().unwrap_or(0);
            for s in 0..len {
                mean_cpu.push(
                    slice
                        .iter()
                        .map(|t| t.samples[s].cpu_usage_pct)
                        .sum::<f64>()
                        / slice.len() as f64,
                );
            }
            let load = trace_to_load_pattern(&mean_cpu, interval, 12.0);
            let mut spec = ServiceSpec::synthetic(i as u32, ServiceProfile::Mixed, load)
                .with_demands(0.12, MemMb(8.0), 0.2);
            spec.container = spec
                .container
                .clone()
                .with_mem_per_rps(MemMb(14.0))
                .with_queue_cap(64);
            builder = builder.service(spec);
        }
        let report = builder.run()?;
        table.row(vec![
            kind.label().to_string(),
            format!("{:.1}", report.mean_response_ms()),
            format!("{:.2}", report.requests.failed_pct()),
            format!("{:.2}", report.cost.mean_cores()),
        ]);
    }
    println!("\nReplay results (paper Fig. 10: hybridmem best, k8s > hybrid):");
    println!("{table}");
    Ok(())
}
