//! Quickstart: run the Kubernetes baseline and HyScaleCPU on the same
//! CPU-bound workload and compare user-perceived performance.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hyscale::core::{AlgorithmKind, ScenarioBuilder};
use hyscale::metrics::{format_speedup, Table};
use hyscale::workload::{LoadPattern, ServiceProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("HyScale quickstart: 6 worker nodes, 4 CPU-bound microservices,");
    println!("low-burst client load, 10 simulated minutes, 2 seeds.\n");

    let mut table = Table::new(vec![
        "algorithm",
        "mean rt (ms)",
        "p95 rt (ms)",
        "failed %",
        "spawns",
        "vertical ops",
    ]);

    let mut k8s_mean = 0.0;
    for kind in [
        AlgorithmKind::Kubernetes,
        AlgorithmKind::HyScaleCpu,
        AlgorithmKind::HyScaleCpuMem,
    ] {
        let report = ScenarioBuilder::new("quickstart")
            .nodes(6)
            .services(4, ServiceProfile::CpuBound, LoadPattern::low_burst())
            .duration_secs(600.0)
            .algorithm(kind)
            .run_seeds(&[1, 2])?;

        if kind == AlgorithmKind::Kubernetes {
            k8s_mean = report.requests.mean_response_secs();
        }
        table.row(vec![
            kind.label().to_string(),
            format!("{:.1}", report.mean_response_ms()),
            format!(
                "{:.1}",
                report.requests.response_times.percentile(95.0) * 1e3
            ),
            format!("{:.2}", report.requests.failed_pct()),
            report.scaling.spawns.to_string(),
            report.scaling.vertical.to_string(),
        ]);
        let speedup = format_speedup(k8s_mean, report.requests.mean_response_secs());
        println!(
            "{:<12} done: {:>8} requests, availability {:.2}%, speedup vs k8s {}",
            kind.label(),
            report.requests.issued,
            report.requests.availability_pct(),
            speedup,
        );
    }

    println!("\n{table}");
    println!("The hybrid algorithms serve the same load with fewer replicas by");
    println!("resizing containers in place (docker update) and only spawning");
    println!("replicas when a node runs out of resources.");
    Ok(())
}
