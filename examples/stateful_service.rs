//! Stateful microservices — the paper's motivation for vertical-first
//! scaling, and one of its named future-work items.
//!
//! "Horizontally scaling microservices that need to preserve state is
//! non-trivial as it introduces the need for a consistency model to
//! maintain state amongst all replicas. Hence, in these scenarios, the
//! best scaling decisions are those that bring forth more resources to a
//! particular container (i.e., vertical scaling)." — Sec. IV-B.
//!
//! This example gives a service a per-replica state-synchronization cost
//! (50 ms per extra replica, a quorum-write tax) and compares the
//! horizontal-only Kubernetes baseline against the hybrid algorithm: the
//! more replicas Kubernetes adds, the more every single request pays.
//!
//! ```sh
//! cargo run --release --example stateful_service
//! ```

use hyscale::cluster::MemMb;
use hyscale::core::{AlgorithmKind, ScenarioBuilder};
use hyscale::metrics::{format_speedup, Table};
use hyscale::workload::{LoadPattern, ServiceProfile, ServiceSpec};

fn run(kind: AlgorithmKind, coordination_secs: f64) -> hyscale::core::RunReport {
    let mut builder = ScenarioBuilder::new("stateful")
        .nodes(6)
        .duration_secs(1200.0)
        .algorithm(kind)
        .seed(11);
    for i in 0..3u32 {
        let mut spec = ServiceSpec::synthetic(
            i,
            ServiceProfile::CpuBound,
            LoadPattern::low_burst().scaled(2.2),
        )
        .with_demands(0.2, MemMb(2.0), 0.5);
        spec.container = spec
            .container
            .clone()
            .with_mem_limit(MemMb(512.0))
            .with_coordination_secs(coordination_secs);
        builder = builder.service(spec);
    }
    builder.run().expect("scenario runs")
}

fn main() {
    println!("Stateful services: every request pays 50 ms per extra replica");
    println!("(state synchronization). Vertical-first scaling avoids the tax.\n");

    let mut table = Table::new(vec![
        "algorithm",
        "state sync",
        "mean rt (ms)",
        "failed %",
        "mean replicas/svc",
    ]);
    let mut k8s_stateful_rt = 0.0;
    let mut hybrid_stateful_rt = 0.0;
    for kind in [AlgorithmKind::Kubernetes, AlgorithmKind::HyScaleCpu] {
        for coordination in [0.0, 0.05] {
            let report = run(kind, coordination);
            let mean_replicas = report.replicas.mean() / 3.0;
            if coordination > 0.0 {
                if kind == AlgorithmKind::Kubernetes {
                    k8s_stateful_rt = report.requests.mean_response_secs();
                } else {
                    hybrid_stateful_rt = report.requests.mean_response_secs();
                }
            }
            table.row(vec![
                kind.label().to_string(),
                if coordination > 0.0 {
                    "50ms/replica".into()
                } else {
                    "none".to_string()
                },
                format!("{:.1}", report.mean_response_ms()),
                format!("{:.2}", report.requests.failed_pct()),
                format!("{mean_replicas:.1}"),
            ]);
        }
    }
    println!("{table}");
    println!(
        "hybrid speedup over kubernetes on the stateful workload: {}",
        format_speedup(k8s_stateful_rt, hybrid_stateful_rt)
    );
    println!("(the hybrid algorithm keeps fewer replicas by resizing in place,");
    println!("so its requests pay less of the consistency tax)");
}
