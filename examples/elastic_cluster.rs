//! Dynamic addition and removal of machines — a paper future-work item.
//!
//! "We also aim to support features such as the dynamic addition and
//! removal of machines" — Sec. VII. This example powers three extra
//! machines on as a burst begins and decommissions one machine mid-run,
//! and shows the autoscalers absorbing both events: replicas lost with
//! the machine surface as removal failures, the Monitor re-discovers the
//! machine pool each period, and scaling decisions move to the surviving
//! and newly commissioned nodes.
//!
//! ```sh
//! cargo run --release --example elastic_cluster
//! ```

use hyscale::cluster::NodeSpec;
use hyscale::core::{AlgorithmKind, NodeEvent, ScenarioBuilder};
use hyscale::metrics::Table;
use hyscale::workload::{LoadPattern, ServiceProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Elastic machine pool: start with 3 nodes, commission 3 more at");
    println!("t=300 s (as the burst begins), decommission one at t=700 s.\n");

    let mut table = Table::new(vec![
        "algorithm",
        "mean rt (ms)",
        "failed %",
        "removal %",
        "peak replicas",
    ]);
    for kind in [
        AlgorithmKind::Kubernetes,
        AlgorithmKind::HyScaleCpu,
        AlgorithmKind::HyScaleCpuMem,
    ] {
        let report = ScenarioBuilder::new("elastic-cluster")
            .nodes(3)
            .services(
                3,
                ServiceProfile::CpuBound,
                LoadPattern::high_burst().scaled(0.9),
            )
            .duration_secs(1200.0)
            .algorithm(kind)
            .seed(13)
            .node_event(540.0, NodeEvent::Commission(NodeSpec::uniform_worker()))
            .node_event(540.0, NodeEvent::Commission(NodeSpec::uniform_worker()))
            .node_event(540.0, NodeEvent::Commission(NodeSpec::uniform_worker()))
            .node_event(900.0, NodeEvent::Decommission(0))
            .run()?;
        table.row(vec![
            kind.label().to_string(),
            format!("{:.1}", report.mean_response_ms()),
            format!("{:.2}", report.requests.failed_pct()),
            format!("{:.2}", report.requests.removal_failed_pct()),
            format!("{:.0}", report.replicas.max()),
        ]);
    }
    println!("{table}");
    println!("The first burst hits the under-provisioned 3-node pool (hence the");
    println!("connection failures — far worse for horizontal-only Kubernetes);");
    println!("removal failures trace to the decommissioned machine's in-flight");
    println!("requests. The commissioned machines absorb the later bursts.");
    Ok(())
}
