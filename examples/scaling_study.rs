//! The Section III manual scaling study: horizontal vs vertical, with
//! equal aggregate resources, no autoscaler in the loop.
//!
//! This is the motivation experiment behind hybrid scaling (the paper's
//! Figs. 2 and 3): replicating a CPU-bound service across machines buys
//! nothing when the aggregate CPU share is held constant — it only adds
//! per-replica overhead and contention — while replicating a
//! network-bound service relieves transmit-queue contention and wins.
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use hyscale::cluster::{ContainerSpec, Cores, Mbps, MemMb, NodeSpec, ServiceId};
use hyscale::core::{AlgorithmKind, ScenarioBuilder};
use hyscale::metrics::Table;
use hyscale::workload::{LoadPattern, ServiceProfile, ServiceSpec};

/// Runs a fixed-allocation scenario with `replicas` replicas of the
/// service spread over `replicas` nodes, each contending with an
/// antagonist, holding the aggregate CPU share constant.
fn run_cpu(replicas: usize) -> Result<f64, Box<dyn std::error::Error>> {
    let total_share = Cores(1.0); // aggregate CPU request across replicas
    let per_replica = total_share / replicas as f64;
    let mut builder = ScenarioBuilder::new(format!("cpu-study-{replicas}"))
        .nodes_with_spec(replicas, NodeSpec::uniform_worker())
        .algorithm(AlgorithmKind::None)
        .initial_replicas(replicas)
        .duration_secs(120.0)
        .seed(1);
    // One antagonist per node hogs the rest of the machine, so each
    // replica really only gets its share.
    for node in 0..replicas {
        builder = builder.antagonist(
            node,
            ContainerSpec::new(ServiceId::new(99))
                .with_cpu_request(Cores(4.0) - per_replica)
                .antagonist(),
        );
    }
    let service = ServiceSpec::synthetic(
        0,
        ServiceProfile::CpuBound,
        LoadPattern::Constant { rate: 2.0 },
    )
    .with_container(
        ContainerSpec::new(ServiceId::new(0))
            .with_cpu_request(per_replica)
            .with_startup_secs(0.0),
    );
    let report = builder.service(service).run()?;
    Ok(report.mean_response_ms())
}

/// Network variant: total bandwidth fixed at 100 Mb/s via `tc` caps; more
/// replicas = fewer co-located flows per NIC.
fn run_net(replicas: usize) -> Result<f64, Box<dyn std::error::Error>> {
    let per_replica_cap = Mbps(100.0 / replicas as f64);
    let mut builder = ScenarioBuilder::new(format!("net-study-{replicas}"))
        .nodes_with_spec(replicas, NodeSpec::uniform_worker().with_nic(Mbps(100.0)))
        .algorithm(AlgorithmKind::None)
        .initial_replicas(replicas)
        .duration_secs(120.0)
        .seed(1);
    for node in 0..replicas {
        builder = builder.antagonist(
            node,
            ContainerSpec::new(ServiceId::new(99))
                .with_cpu_request(Cores(1.0))
                .with_net_request(Mbps(100.0)) // hogs the NIC too
                .antagonist(),
        );
    }
    let service = ServiceSpec::synthetic(
        0,
        ServiceProfile::NetBound,
        LoadPattern::Constant { rate: 1.0 },
    )
    .with_demands(0.005, MemMb(4.0), 12.0)
    .with_container(
        ContainerSpec::new(ServiceId::new(0))
            .with_net_cap(per_replica_cap)
            .with_startup_secs(0.0),
    );
    let report = builder.service(service).run()?;
    Ok(report.mean_response_ms())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Section III study: response time vs replica count at constant");
    println!("aggregate resources (vertical == 1 replica).\n");

    let mut table = Table::new(vec!["replicas", "cpu-bound rt (ms)", "net-bound rt (ms)"]);
    for &replicas in &[1usize, 2, 4, 8] {
        let cpu = run_cpu(replicas)?;
        let net = run_net(replicas)?;
        table.row(vec![
            replicas.to_string(),
            format!("{cpu:.1}"),
            format!("{net:.1}"),
        ]);
    }
    println!("{table}");
    println!("CPU-bound: more replicas at the same aggregate share = slower");
    println!("(per-replica overhead + co-location contention, Fig. 2).");
    println!("Net-bound: more replicas = faster until the tx-queue relief");
    println!("saturates (Fig. 3).");
    Ok(())
}
